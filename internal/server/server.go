// Package server implements the gocserve HTTP JSON API: game registration,
// asynchronous job submission onto the concurrent experiment engine, status
// polling, cancellation, and result retrieval.
//
// Endpoints (all JSON):
//
//	POST   /v1/games            register a game (core.Game wire form) → {id}
//	GET    /v1/games/{id}       fetch a registered game
//	POST   /v1/jobs             submit a job spec → job status (may be cached)
//	GET    /v1/jobs             list all job statuses
//	GET    /v1/jobs/{id}        poll one job's status and progress
//	GET    /v1/jobs/{id}/result fetch a finished job's result
//	                            (409 while running, 410 if failed/canceled)
//	DELETE /v1/jobs/{id}        cancel a running job (the returned snapshot
//	                            may still read "running"; poll for the
//	                            terminal state)
//
// Deduplication means a job can be shared: identical submissions attach to
// the same job ID, and DELETE cancels that job for every attached client —
// the same way invalidating a shared cache entry affects all its readers.
// Clients that must not share fate should vary the seed (or use /v2, whose
// handles reference-count shared jobs).
//
//	GET    /healthz             liveness probe
//
// The v2 API is the self-describing envelope form: a job arrives as
// {"kind": ..., "seed": ..., "spec": {...}} and is resolved purely through
// the engine's spec registry (engine.RegisterSpec) — the server never
// switches on job kinds, so new spec types plug in without server edits.
// POST returns a per-client *handle* (h-N) that reference-counts the
// underlying deduplicated job: DELETE releases one client's interest and
// cancels the job only when the last handle is released.
//
//	GET    /v2/specs                  list registered spec kinds
//	POST   /v2/jobs                   submit a JobEnvelope → JobHandle
//	GET    /v2/jobs/{handle}          poll the handle's job status
//	GET    /v2/jobs/{handle}/result   fetch the finished job's result
//	GET    /v2/jobs/{handle}/events   stream progress + terminal status (SSE:
//	                                  "progress" events, then one "end")
//	DELETE /v2/jobs/{handle}          release the handle; cancels the job
//	                                  only if no other handle remains
//
// The v1 endpoints are kept by translation: a v1 JobRequest is rewritten
// into a v2 envelope and follows the same registry path (v1 DELETE still
// cancels the job outright — refcounting is a v2 notion). A job a v1
// client submitted or attached to is *pinned*: v1 clients hold no handles,
// so releasing the last v2 handle never cancels it — only an explicit v1
// DELETE (or shutdown) does. The handle table itself is bounded by
// MaxHandles; past the cap the oldest handles are evicted (they 404
// afterwards) without canceling their jobs.
//
// Results are cached in memory keyed by (canonical job spec, seed):
// resubmitting an identical spec returns a completed job instantly. The
// cache is sound because every job is a deterministic function of its spec
// and seed — the engine's worker pool cannot perturb results.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
)

// JobRequest is the wire form of a job submission. Type selects the engine
// spec; the remaining fields parameterize it (unused fields are ignored).
type JobRequest struct {
	// Type is one of learn_sweep, design_sweep, replay_sweep,
	// equilibrium_sweep.
	Type string `json:"type"`
	// Seed roots the job's deterministic randomness.
	Seed uint64 `json:"seed"`
	// GameID references a game registered via POST /v1/games (learn_sweep
	// only; empty means random games from Gen).
	GameID string `json:"game_id,omitempty"`
	// Gen parameterizes random game generation.
	Gen *core.GenSpec `json:"gen,omitempty"`
	// Schedulers, Runs, MaxSteps parameterize learn_sweep.
	Schedulers []string `json:"schedulers,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	MaxSteps   int      `json:"max_steps,omitempty"`
	// Pairs parameterizes design_sweep.
	Pairs int `json:"pairs,omitempty"`
	// Games parameterizes equilibrium_sweep.
	Games int `json:"games,omitempty"`
	// Replay parameterizes replay_sweep (Seed inside is ignored; per-run
	// seeds derive from the job seed).
	Replay *replay.ScenarioParams `json:"replay,omitempty"`
}

// JobHandle is the wire form of a per-client job handle (the v2 POST and
// GET responses). Handle names this client's claim on the job; Clients is
// the number of live handles sharing it. The embedded Status describes the
// underlying (possibly shared) job.
type JobHandle struct {
	Handle  string `json:"handle"`
	Clients int    `json:"clients"`
	engine.Status
}

// Server is the gocserve HTTP handler. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	manager *engine.Manager
	mux     *http.ServeMux

	mu    sync.Mutex
	games map[string]*core.Game
	cache map[string]string // cache key → ID of the job holding the result

	// Per-client handles (v2). A handle is one client's reference to a
	// deduplicated job; refs counts live handles per job so releasing a
	// handle cancels the job only when no other client still wants it.
	// v1pin marks jobs a v1 client submitted or attached to: v1 clients are
	// unaccountable (no handles), so a job they touched is never canceled by
	// v2 refcounting — only an explicit v1 DELETE or shutdown stops it.
	handles       map[string]string   // handle id → job id
	handleOrder   []string            // handle ids in mint order, for eviction
	refs          map[string]int      // job id → live handle count
	v1pin         map[string]struct{} // job id → attached via v1
	nextHandle    uint64
	handleSweepAt int // pruneHandlesLocked's next sweep threshold
}

// MaxHandles caps the v2 handle table. Handles are minted per client and
// many clients never DELETE, so unlike the result cache the table is not
// bounded by job retention; past the cap the oldest handles are evicted
// (404 on later use) *without* canceling their jobs.
const MaxHandles = 4 * engine.DefaultRetention

// New returns a server running jobs on an engine with the given worker
// count (<= 0 selects GOMAXPROCS).
func New(workers int) *Server {
	s := &Server{
		manager: engine.NewManager(engine.New(workers)),
		mux:     http.NewServeMux(),
		games:   map[string]*core.Game{},
		cache:   map[string]string{},
		handles: map[string]string{},
		refs:    map[string]int{},
		v1pin:   map[string]struct{}{},
	}
	s.mux.HandleFunc("POST /v1/games", s.handleCreateGame)
	s.mux.HandleFunc("GET /v1/games/{id}", s.handleGetGame)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v2/specs", s.handleListSpecs)
	s.mux.HandleFunc("POST /v2/jobs", s.handleCreateJobV2)
	s.mux.HandleFunc("GET /v2/jobs/{handle}", s.handleHandleStatus)
	s.mux.HandleFunc("GET /v2/jobs/{handle}/result", s.handleHandleResult)
	s.mux.HandleFunc("GET /v2/jobs/{handle}/events", s.handleHandleEvents)
	s.mux.HandleFunc("DELETE /v2/jobs/{handle}", s.handleReleaseHandle)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running job. In-flight requests still get coherent
// (canceled) statuses; call during graceful shutdown after the listener
// stops accepting connections.
func (s *Server) Close() { s.manager.Close() }

func (s *Server) handleCreateGame(w http.ResponseWriter, r *http.Request) {
	var g core.Game
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode game: %w", err))
		return
	}
	id, err := gameID(&g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.games[id] = &g
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     id,
		"miners": g.NumMiners(),
		"coins":  g.NumCoins(),
	})
}

func (s *Server) handleGetGame(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g, ok := s.games[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown game"))
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// resolveGame is the engine.GameResolver hook the registry path uses: spec
// kinds that reference games by ID (engine.GameRefSpec) are resolved against
// the server's registered games without the registry knowing the server.
func (s *Server) resolveGame(id string) (*core.Game, error) {
	s.mu.Lock()
	g, ok := s.games[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown game %q", id)
	}
	return g, nil
}

// submitEnvelope is the single path every job submission takes, v1 or v2:
// decode through the spec registry, resolve game references, dedupe against
// the result cache, submit. It returns the (possibly shared) job and whether
// the submission was answered by an existing cache entry. With mint set (v2)
// it also mints a per-client handle *inside the dedup critical section* —
// minting later would let a concurrent last-handle DELETE cancel the job
// between the cache lookup and the refcount increment.
func (s *Server) submitEnvelope(env engine.JobEnvelope, mint bool) (*engine.Job, bool, JobHandle, error) {
	var jh JobHandle
	spec, err := env.Decode()
	if err != nil {
		return nil, false, jh, err
	}
	spec, err = engine.ResolveSpec(spec, s.resolveGame)
	if err != nil {
		return nil, false, jh, err
	}
	key, err := engine.CacheKey(spec, env.Seed)
	if err != nil {
		return nil, false, jh, err
	}
	// Check-and-reserve is one critical section: concurrent identical
	// submissions either all see the same cached job or exactly one of them
	// submits and publishes the key the others then hit. (Lock order is
	// server.mu → manager/job mutexes; the manager never calls back into
	// the server, so this cannot deadlock.)
	s.mu.Lock()
	if cachedID, hit := s.cache[key]; hit {
		// Point the client at the job already computing (or holding) this
		// result — identical submissions attach to the same job, whether it
		// is still running or long done, so duplicates are never recomputed
		// and the job table doesn't grow. A dangling entry (job evicted,
		// failed, or canceled) falls through to a fresh submission.
		if job, err := s.manager.Get(cachedID); err == nil {
			// Read Status before Result: if the snapshot is non-terminal the
			// job is servable regardless of what happens next, and if it is
			// terminal the result is already set (finish() stores both under
			// one lock) — the reverse order could misread a job finishing
			// between the two calls as failed and recompute it.
			st := job.Status()
			if _, hasResult := job.Result(); hasResult || !st.State.Terminal() {
				if mint {
					jh = s.mintHandleLocked(job.ID())
				} else {
					s.v1pin[job.ID()] = struct{}{}
				}
				s.mu.Unlock()
				return job, true, jh, nil
			}
		}
		delete(s.cache, key)
	}
	job, err := s.manager.Submit(spec, env.Seed)
	if err != nil {
		s.mu.Unlock()
		return nil, false, jh, err
	}
	// Publish the key before releasing the lock so no identical submission
	// can slip between submit and publish; retract it if the job fails or
	// is canceled.
	s.cache[key] = job.ID()
	if mint {
		jh = s.mintHandleLocked(job.ID())
	} else {
		s.v1pin[job.ID()] = struct{}{}
	}
	s.pruneCacheLocked()
	s.mu.Unlock()
	go func() {
		<-job.Done()
		if _, ok := job.Result(); !ok {
			s.mu.Lock()
			if s.cache[key] == job.ID() {
				delete(s.cache, key)
			}
			s.mu.Unlock()
		}
	}()
	return job, false, jh, nil
}

// mintHandleLocked creates a fresh handle claiming jobID. Callers must hold
// s.mu; the returned JobHandle carries the handle id and refcount (the job
// status is filled in outside the lock).
func (s *Server) mintHandleLocked(jobID string) JobHandle {
	s.nextHandle++
	handle := fmt.Sprintf("h-%d", s.nextHandle)
	s.handles[handle] = jobID
	s.handleOrder = append(s.handleOrder, handle)
	s.refs[jobID]++
	s.pruneHandlesLocked()
	return JobHandle{Handle: handle, Clients: s.refs[jobID]}
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job request: %w", err))
		return
	}
	env, err := translateV1(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, cached, _, err := s.submitEnvelope(env, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := job.Status()
	st.Cached = cached
	writeJSON(w, http.StatusCreated, st)
}

// translateV1 rewrites the legacy flat JobRequest into a self-describing v2
// envelope; from there v1 submissions follow the registry path exactly like
// v2 ones, so the two APIs can never drift (same specs, same cache keys).
func translateV1(req JobRequest) (engine.JobEnvelope, error) {
	gen := core.GenSpec{}
	if req.Gen != nil {
		gen = *req.Gen
	}
	var spec engine.Spec
	switch req.Type {
	case "learn_sweep":
		// A set GameID rides through as a reference; ResolveGames swaps it
		// for the game and clears Gen (a fixed game overrides the generator).
		spec = engine.LearnSweep{
			GameID:     req.GameID,
			Gen:        gen,
			Schedulers: req.Schedulers,
			Runs:       req.Runs,
			MaxSteps:   req.MaxSteps,
		}
	case "design_sweep":
		spec = engine.DesignSweep{Gen: gen, Pairs: req.Pairs}
	case "replay_sweep":
		sw := engine.ReplaySweep{Runs: req.Runs}
		if req.Replay != nil {
			sw.Params = *req.Replay
		}
		spec = sw
	case "equilibrium_sweep":
		spec = engine.EquilibriumSweep{Gen: gen, Games: req.Games}
	default:
		return engine.JobEnvelope{}, fmt.Errorf("unknown job type %q", req.Type)
	}
	raw, err := engine.CanonicalSpecJSON(spec)
	if err != nil {
		return engine.JobEnvelope{}, err
	}
	return engine.JobEnvelope{Kind: spec.Kind(), Seed: req.Seed, Spec: raw}, nil
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Statuses())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJobResult(w, job)
}

// writeJobResult serves a job's result with the shared v1/v2 semantics:
// 409 while running, 410 for terminal-but-resultless (failed/canceled).
func writeJobResult(w http.ResponseWriter, job *engine.Job) {
	st := job.Status()
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", st.ID, st.State))
		return
	}
	res, ok := job.Result()
	if !ok {
		// Terminal but resultless (failed or canceled): 410, not 409, so
		// clients that retry on "still running" don't poll forever.
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     st.ID,
		"kind":   st.Kind,
		"result": res,
	})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// ---- v2: self-describing envelopes, per-client handles, SSE ----

func (s *Server) handleListSpecs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"kinds": engine.SpecKinds()})
}

func (s *Server) handleCreateJobV2(w http.ResponseWriter, r *http.Request) {
	var env engine.JobEnvelope
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job envelope: %w", err))
		return
	}
	// Every POST mints a fresh handle, cache hit or not: the handle is this
	// client's claim on the (possibly shared) job, and the refcount is what
	// keeps one client's DELETE from canceling another's work.
	job, cached, jh, err := s.submitEnvelope(env, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jh.Status = job.Status()
	jh.Cached = cached
	writeJSON(w, http.StatusCreated, jh)
}

// jobForHandle resolves a handle to its job and the job's live handle count.
func (s *Server) jobForHandle(handle string) (*engine.Job, int, error) {
	s.mu.Lock()
	jobID, ok := s.handles[handle]
	clients := s.refs[jobID]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("unknown handle %q", handle)
	}
	job, err := s.manager.Get(jobID)
	if err != nil {
		return nil, 0, err
	}
	return job, clients, nil
}

func (s *Server) handleHandleStatus(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	job, clients, err := s.jobForHandle(handle)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, JobHandle{Handle: handle, Clients: clients, Status: job.Status()})
}

func (s *Server) handleHandleResult(w http.ResponseWriter, r *http.Request) {
	job, _, err := s.jobForHandle(r.PathValue("handle"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJobResult(w, job)
}

// handleHandleEvents streams the job's status as server-sent events: a
// "progress" event per observed snapshot (coalesced to the latest for slow
// consumers) and a final "end" event carrying the terminal status, after
// which the stream closes. Backed by engine.Manager.Watch.
func (s *Server) handleHandleEvents(w http.ResponseWriter, r *http.Request) {
	job, _, err := s.jobForHandle(r.PathValue("handle"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// Watch unsubscribes itself when the client disconnects (r.Context()).
	for st := range job.Watch(r.Context()) {
		event := "progress"
		if st.State.Terminal() {
			event = "end"
		}
		b, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}
}

func (s *Server) handleReleaseHandle(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	s.mu.Lock()
	jobID, ok := s.handles[handle]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown handle %q", handle))
		return
	}
	delete(s.handles, handle)
	s.refs[jobID]--
	remaining := s.refs[jobID]
	var job *engine.Job
	if j, err := s.manager.Get(jobID); err == nil {
		job = j
	}
	// Cancel only when no v2 handle remains AND no v1 client ever attached:
	// v1 clients hold no handles, so a v1-touched job must outlive v2
	// refcounting (a v1 DELETE can still cancel it explicitly).
	_, pinned := s.v1pin[jobID]
	cancel := remaining <= 0 && !pinned
	if remaining <= 0 {
		delete(s.refs, jobID)
	}
	if cancel && job != nil {
		if _, done := job.Result(); !done {
			// The job is about to be canceled: retract its cache entries
			// inside this critical section, so a concurrent identical
			// submission submits fresh instead of attaching (and minting
			// a handle) to a job that is being torn down. A finished
			// job's cached result stays servable.
			for k, id := range s.cache {
				if id == jobID {
					delete(s.cache, k)
				}
			}
		}
	}
	s.mu.Unlock()
	resp := JobHandle{Handle: handle, Clients: remaining}
	if job != nil {
		if cancel {
			// Last interested client is gone: cancel the shared job (a no-op
			// if it already finished).
			job.Cancel()
		}
		resp.Status = job.Status()
	}
	writeJSON(w, http.StatusOK, resp)
}

// pruneHandlesLocked bounds the v2 handle bookkeeping. Handles are minted
// per client and many clients never DELETE, so unlike the result cache the
// table is not bounded by job retention. Two passes: drop handles whose job
// the Manager evicted, then compact handleOrder and — past MaxHandles —
// evict the oldest handles outright, *without* canceling their jobs (forced
// eviction is a memory bound, not a cancellation signal; the job keeps
// running and its result stays cached, but the evicted handle 404s).
//
// The sweep triggers on handleOrder's length, not the handle table's:
// released and evicted handle ids linger in handleOrder until compaction,
// so keying the trigger on it bounds handleOrder's own growth under
// submit→release churn (where the table itself stays small). Triggering on
// doubling since the last sweep — and evicting down to half the cap rather
// than to the cap, so a full table cannot re-trigger on every mint — keeps
// the amortized cost per mint O(1). Callers must hold s.mu.
func (s *Server) pruneHandlesLocked() {
	limit := s.handleSweepAt
	if limit < 2*engine.DefaultRetention {
		limit = 2 * engine.DefaultRetention
	}
	if limit > MaxHandles {
		limit = MaxHandles
	}
	if len(s.handleOrder) <= limit {
		return
	}
	for h, id := range s.handles {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.handles, h)
			if s.refs[id]--; s.refs[id] <= 0 {
				delete(s.refs, id)
			}
		}
	}
	target := len(s.handles)
	if target > MaxHandles {
		target = MaxHandles / 2
	}
	kept := s.handleOrder[:0]
	for _, h := range s.handleOrder {
		id, ok := s.handles[h]
		if !ok {
			continue // released, or dropped by the evicted-job pass
		}
		if len(s.handles) > target {
			delete(s.handles, h)
			if s.refs[id]--; s.refs[id] <= 0 {
				delete(s.refs, id)
			}
			continue
		}
		kept = append(kept, h)
	}
	s.handleOrder = kept
	s.handleSweepAt = 2 * len(s.handleOrder)
}

// pruneCacheLocked drops cache entries whose job the Manager has evicted.
// The Manager caps tracked jobs (engine.DefaultRetention), so without this
// sweep a steady stream of distinct specs would grow the cache forever
// while its entries dangle. Sweeping only past double the job cap keeps the
// amortized cost per submission O(1). Callers must hold s.mu.
func (s *Server) pruneCacheLocked() {
	if len(s.cache) <= 2*engine.DefaultRetention {
		return
	}
	for k, id := range s.cache {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.cache, k)
		}
	}
	// v1 pins are per-job like cache entries, so the same sweep bounds them.
	for id := range s.v1pin {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.v1pin, id)
		}
	}
}

// gameID derives the content-addressed game identifier: a hash of the
// canonical wire form, so the same game always registers under the same ID.
func gameID(g *core.Game) (string, error) {
	b, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("hash game: %w", err)
	}
	sum := sha256.Sum256(b)
	return "g-" + hex.EncodeToString(sum[:8]), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
