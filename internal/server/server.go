// Package server implements the gocserve HTTP JSON API: game registration,
// asynchronous job submission onto the concurrent experiment engine, status
// polling, cancellation, and result retrieval.
//
// Endpoints (all JSON):
//
//	POST   /v1/games            register a game (core.Game wire form) → {id}
//	GET    /v1/games/{id}       fetch a registered game
//	POST   /v1/jobs             submit a job spec → job status (may be cached)
//	GET    /v1/jobs             list all job statuses
//	GET    /v1/jobs/{id}        poll one job's status and progress
//	GET    /v1/jobs/{id}/result fetch a finished job's result
//	                            (409 while running, 410 if failed/canceled)
//	DELETE /v1/jobs/{id}        cancel a running job (the returned snapshot
//	                            may still read "running"; poll for the
//	                            terminal state)
//
// Deduplication means a job can be shared: identical submissions attach to
// the same job ID, and DELETE cancels that job for every attached client —
// the same way invalidating a shared cache entry affects all its readers.
// Clients that must not share fate should vary the seed.
//	GET    /healthz             liveness probe
//
// Results are cached in memory keyed by (game hash, canonical job spec):
// resubmitting an identical spec returns a completed job instantly. The
// cache is sound because every job is a deterministic function of its spec
// and seed — the engine's worker pool cannot perturb results.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
)

// JobRequest is the wire form of a job submission. Type selects the engine
// spec; the remaining fields parameterize it (unused fields are ignored).
type JobRequest struct {
	// Type is one of learn_sweep, design_sweep, replay_sweep,
	// equilibrium_sweep.
	Type string `json:"type"`
	// Seed roots the job's deterministic randomness.
	Seed uint64 `json:"seed"`
	// GameID references a game registered via POST /v1/games (learn_sweep
	// only; empty means random games from Gen).
	GameID string `json:"game_id,omitempty"`
	// Gen parameterizes random game generation.
	Gen *core.GenSpec `json:"gen,omitempty"`
	// Schedulers, Runs, MaxSteps parameterize learn_sweep.
	Schedulers []string `json:"schedulers,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	MaxSteps   int      `json:"max_steps,omitempty"`
	// Pairs parameterizes design_sweep.
	Pairs int `json:"pairs,omitempty"`
	// Games parameterizes equilibrium_sweep.
	Games int `json:"games,omitempty"`
	// Replay parameterizes replay_sweep (Seed inside is ignored; per-run
	// seeds derive from the job seed).
	Replay *replay.ScenarioParams `json:"replay,omitempty"`
}

// Server is the gocserve HTTP handler. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	manager *engine.Manager
	mux     *http.ServeMux

	mu    sync.Mutex
	games map[string]*core.Game
	cache map[string]string // cache key → ID of the job holding the result
}

// New returns a server running jobs on an engine with the given worker
// count (<= 0 selects GOMAXPROCS).
func New(workers int) *Server {
	s := &Server{
		manager: engine.NewManager(engine.New(workers)),
		mux:     http.NewServeMux(),
		games:   map[string]*core.Game{},
		cache:   map[string]string{},
	}
	s.mux.HandleFunc("POST /v1/games", s.handleCreateGame)
	s.mux.HandleFunc("GET /v1/games/{id}", s.handleGetGame)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running job. In-flight requests still get coherent
// (canceled) statuses; call during graceful shutdown after the listener
// stops accepting connections.
func (s *Server) Close() { s.manager.Close() }

func (s *Server) handleCreateGame(w http.ResponseWriter, r *http.Request) {
	var g core.Game
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode game: %w", err))
		return
	}
	id, err := gameID(&g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.games[id] = &g
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     id,
		"miners": g.NumMiners(),
		"coins":  g.NumCoins(),
	})
}

func (s *Server) handleGetGame(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g, ok := s.games[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown game"))
		return
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job request: %w", err))
		return
	}
	spec, err := s.buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey(spec, req.Seed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Check-and-reserve is one critical section: concurrent identical
	// submissions either all see the same cached job or exactly one of them
	// submits and publishes the key the others then hit. (Lock order is
	// server.mu → manager/job mutexes; the manager never calls back into
	// the server, so this cannot deadlock.)
	s.mu.Lock()
	if cachedID, hit := s.cache[key]; hit {
		// Point the client at the job already computing (or holding) this
		// result — identical submissions attach to the same job, whether it
		// is still running or long done, so duplicates are never recomputed
		// and the job table doesn't grow. A dangling entry (job evicted,
		// failed, or canceled) falls through to a fresh submission.
		if job, err := s.manager.Get(cachedID); err == nil {
			// Read Status before Result: if the snapshot is non-terminal the
			// job is servable regardless of what happens next, and if it is
			// terminal the result is already set (finish() stores both under
			// one lock) — the reverse order could misread a job finishing
			// between the two calls as failed and recompute it.
			st := job.Status()
			if _, hasResult := job.Result(); hasResult || !st.State.Terminal() {
				s.mu.Unlock()
				st.Cached = true
				writeJSON(w, http.StatusCreated, st)
				return
			}
		}
		delete(s.cache, key)
	}
	job, err := s.manager.Submit(spec, req.Seed)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Publish the key before releasing the lock so no identical submission
	// can slip between submit and publish; retract it if the job fails or
	// is canceled.
	s.cache[key] = job.ID()
	s.pruneCacheLocked()
	s.mu.Unlock()
	go func() {
		<-job.Done()
		if _, ok := job.Result(); !ok {
			s.mu.Lock()
			if s.cache[key] == job.ID() {
				delete(s.cache, key)
			}
			s.mu.Unlock()
		}
	}()
	writeJSON(w, http.StatusCreated, job.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Statuses())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st := job.Status()
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", st.ID, st.State))
		return
	}
	res, ok := job.Result()
	if !ok {
		// Terminal but resultless (failed or canceled): 410, not 409, so
		// clients that retry on "still running" don't poll forever.
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     st.ID,
		"kind":   st.Kind,
		"result": res,
	})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// pruneCacheLocked drops cache entries whose job the Manager has evicted.
// The Manager caps tracked jobs (engine.DefaultRetention), so without this
// sweep a steady stream of distinct specs would grow the cache forever
// while its entries dangle. Sweeping only past double the job cap keeps the
// amortized cost per submission O(1). Callers must hold s.mu.
func (s *Server) pruneCacheLocked() {
	if len(s.cache) <= 2*engine.DefaultRetention {
		return
	}
	for k, id := range s.cache {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.cache, k)
		}
	}
}

// buildSpec translates a wire request into a typed engine spec.
func (s *Server) buildSpec(req JobRequest) (engine.Spec, error) {
	gen := core.GenSpec{}
	if req.Gen != nil {
		gen = *req.Gen
	}
	switch req.Type {
	case "learn_sweep":
		var g *core.Game
		if req.GameID != "" {
			s.mu.Lock()
			g = s.games[req.GameID]
			s.mu.Unlock()
			if g == nil {
				return nil, fmt.Errorf("unknown game %q", req.GameID)
			}
			gen = core.GenSpec{} // a fixed game overrides the generator spec
		}
		return engine.LearnSweep{
			Game:       g,
			Gen:        gen,
			Schedulers: req.Schedulers,
			Runs:       req.Runs,
			MaxSteps:   req.MaxSteps,
		}, nil
	case "design_sweep":
		return engine.DesignSweep{Gen: gen, Pairs: req.Pairs}, nil
	case "replay_sweep":
		spec := engine.ReplaySweep{Runs: req.Runs}
		if req.Replay != nil {
			spec.Params = *req.Replay
			spec.Params.Seed = 0 // per-run seeds derive from the job seed
		}
		return spec, nil
	case "equilibrium_sweep":
		return engine.EquilibriumSweep{Gen: gen, Games: req.Games}, nil
	default:
		return nil, fmt.Errorf("unknown job type %q", req.Type)
	}
}

// gameID derives the content-addressed game identifier: a hash of the
// canonical wire form, so the same game always registers under the same ID.
func gameID(g *core.Game) (string, error) {
	b, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("hash game: %w", err)
	}
	sum := sha256.Sum256(b)
	return "g-" + hex.EncodeToString(sum[:8]), nil
}

// cacheKey derives the result-cache key from the *built* spec plus the job
// seed — the exact inputs the engine runs on — rather than the raw request,
// so wire fields a job type ignores can never split or alias cache entries.
// Every spec is a JSON-encodable struct with a fixed field order, and an
// embedded *core.Game marshals in canonical (sorted-miner) form, which
// covers the game identity.
func cacheKey(spec engine.Spec, seed uint64) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("hash job spec: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", spec.Kind(), seed)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
