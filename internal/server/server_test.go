package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(4)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %v", method, url, resp.StatusCode, wantCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func pollUntilTerminal(t *testing.T, base, id string) engine.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st engine.Status
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, http.StatusOK, &st)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return engine.Status{}
}

// TestFullRoundTrip drives the whole intended flow: register a game, submit
// a learning sweep on it, poll status, fetch the result, and hit the result
// cache on resubmission.
func TestFullRoundTrip(t *testing.T) {
	_, ts := testServer(t)

	// Create the quick-start game.
	game := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}, {Name: "p4", Power: 2}},
		[]core.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 9},
	)
	var created struct {
		ID     string `json:"id"`
		Miners int    `json:"miners"`
		Coins  int    `json:"coins"`
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/games", game, http.StatusCreated, &created)
	if created.ID == "" || created.Miners != 4 || created.Coins != 2 {
		t.Fatalf("created = %+v", created)
	}

	// The game round-trips.
	var back core.Game
	doJSON(t, http.MethodGet, ts.URL+"/v1/games/"+created.ID, nil, http.StatusOK, &back)
	if back.NumMiners() != 4 {
		t.Fatalf("fetched game has %d miners", back.NumMiners())
	}

	// Submit a sweep over the registered game.
	req := JobRequest{
		Type:       "learn_sweep",
		Seed:       11,
		GameID:     created.ID,
		Schedulers: []string{"random", "round-robin"},
		Runs:       20,
	}
	var st engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st)
	if st.ID == "" || st.Kind != "learn_sweep" {
		t.Fatalf("submit status = %+v", st)
	}

	// Poll until done.
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != engine.StateDone {
		t.Fatalf("final state = %+v", final)
	}
	if final.Progress.Done != final.Progress.Total || final.Progress.Total != 40 {
		t.Fatalf("progress = %+v", final.Progress)
	}

	// Fetch the result.
	var res struct {
		Result engine.LearnSweepResult `json:"result"`
		Cached bool                    `json:"cached"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &res)
	if res.Result.TotalRuns != 40 || len(res.Result.Schedulers) != 2 {
		t.Fatalf("result = %+v", res.Result)
	}
	for _, s := range res.Result.Schedulers {
		if s.Converged != s.Runs {
			t.Fatalf("scheduler %s: %d/%d converged", s.Scheduler, s.Converged, s.Runs)
		}
	}

	// Resubmit the identical request: the cache points the client back at
	// the original job — no new job is minted — and flags the hit.
	var st2 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st2)
	if st2.State != engine.StateDone || !st2.Cached {
		t.Fatalf("resubmit status = %+v", st2)
	}
	if st2.ID != st.ID {
		t.Fatalf("cache hit minted a new job: %s (original %s)", st2.ID, st.ID)
	}
	var res2 struct {
		Result engine.LearnSweepResult `json:"result"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st2.ID+"/result", nil, http.StatusOK, &res2)
	a, _ := json.Marshal(res.Result)
	b, _ := json.Marshal(res2.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result differs:\n%s\n%s", a, b)
	}

	// A different seed misses the cache.
	req.Seed = 12
	var st3 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st3)
	if st3.Cached {
		t.Fatal("different seed hit the cache")
	}
	pollUntilTerminal(t, ts.URL, st3.ID)
}

// TestCancellationMidJob submits a job far too large to finish and cancels
// it through the API.
func TestCancellationMidJob(t *testing.T) {
	_, ts := testServer(t)
	req := JobRequest{
		Type:       "learn_sweep",
		Seed:       1,
		Gen:        &core.GenSpec{Miners: 24, Coins: 4},
		Schedulers: []string{"random"},
		Runs:       1000000,
	}
	var st engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st)

	// The result endpoint refuses while the job runs.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: status %d, want 409", resp.StatusCode)
	}

	var canceled engine.Status
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil, http.StatusOK, &canceled)
	final := pollUntilTerminal(t, ts.URL, st.ID)
	if final.State != engine.StateCanceled {
		t.Fatalf("final state = %s, want canceled", final.State)
	}
	if final.Progress.Done >= final.Progress.Total {
		t.Fatalf("job finished despite cancellation: %+v", final.Progress)
	}

	// A canceled job has no result: 410 (terminal), distinct from the 409
	// that means "retry later".
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result of canceled job: status %d, want 410", resp.StatusCode)
	}
}

// TestAllJobTypes submits one small job of each type end to end.
func TestAllJobTypes(t *testing.T) {
	_, ts := testServer(t)
	reqs := []JobRequest{
		{Type: "learn_sweep", Seed: 2, Gen: &core.GenSpec{Miners: 5, Coins: 2}, Schedulers: []string{"max-gain"}, Runs: 4},
		{Type: "design_sweep", Seed: 3, Gen: &core.GenSpec{Miners: 4, Coins: 2}, Pairs: 2},
		{Type: "equilibrium_sweep", Seed: 4, Gen: &core.GenSpec{Miners: 4, Coins: 2}, Games: 6},
		{Type: "replay_sweep", Seed: 5, Runs: 1, Replay: &replayParams},
	}
	for _, req := range reqs {
		var st engine.Status
		doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st)
		final := pollUntilTerminal(t, ts.URL, st.ID)
		if final.State != engine.StateDone {
			t.Fatalf("%s: final = %+v", req.Type, final)
		}
		var res map[string]any
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", nil, http.StatusOK, &res)
		if res["result"] == nil {
			t.Fatalf("%s: empty result", req.Type)
		}
	}

	// The job listing shows all four, terminal.
	var all []engine.Status
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, http.StatusOK, &all)
	if len(all) != len(reqs) {
		t.Fatalf("listed %d jobs, want %d", len(all), len(reqs))
	}
}

// TestCacheKeyIgnoresIrrelevantFields: two replay_sweep submissions that
// differ only in wire fields the job type ignores (learn-only fields) build
// the same job and must share one cache entry.
func TestCacheKeyIgnoresIrrelevantFields(t *testing.T) {
	_, ts := testServer(t)
	p1 := replayParams
	req1 := JobRequest{Type: "replay_sweep", Seed: 5, Runs: 1, Replay: &p1}
	var st1 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req1, http.StatusCreated, &st1)
	if final := pollUntilTerminal(t, ts.URL, st1.ID); final.State != engine.StateDone {
		t.Fatalf("final = %+v", final)
	}
	p2 := replayParams
	req2 := JobRequest{Type: "replay_sweep", Seed: 5, Runs: 1, Replay: &p2, MaxSteps: 7, Schedulers: []string{"random"}}
	var st2 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req2, http.StatusCreated, &st2)
	if !st2.Cached || st2.ID != st1.ID {
		t.Fatalf("normalized resubmit missed the cache: %+v (original %s)", st2, st1.ID)
	}
}

// TestReplayInnerSeedRejected: a non-zero seed inside the replay params used
// to be silently zeroed; it is now a 400 pointing the caller at the
// job-level seed field (the one that actually roots the randomness).
func TestReplayInnerSeedRejected(t *testing.T) {
	_, ts := testServer(t)
	p := replayParams
	p.Seed = 99
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", jsonBody(t, JobRequest{Type: "replay_sweep", Seed: 5, Runs: 1, Replay: &p}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inner-seed submission: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "seed") || !strings.Contains(e.Error, "job-level") {
		t.Fatalf("rejection should point at the job-level seed field, got %q", e.Error)
	}
}

// TestInFlightDedup: an identical submission while the first job is still
// running attaches to the running job instead of recomputing it.
func TestInFlightDedup(t *testing.T) {
	_, ts := testServer(t)
	req := JobRequest{
		Type:       "learn_sweep",
		Seed:       1,
		Gen:        &core.GenSpec{Miners: 16, Coins: 4},
		Schedulers: []string{"random"},
		Runs:       100000, // far too large to finish before the resubmit
	}
	var st1, st2 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st1)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st2)
	if st2.ID != st1.ID || !st2.Cached {
		t.Fatalf("in-flight duplicate not deduped: first %+v, second %+v", st1, st2)
	}
	// Cancel → the cache entry is retracted, so a resubmit mints a new job.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st1.ID, nil, http.StatusOK, nil)
	if final := pollUntilTerminal(t, ts.URL, st1.ID); final.State != engine.StateCanceled {
		t.Fatalf("final = %+v", final)
	}
	var st3 engine.Status
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, http.StatusCreated, &st3)
	if st3.ID == st1.ID || st3.Cached {
		t.Fatalf("canceled job still served from cache: %+v", st3)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st3.ID, nil, http.StatusOK, nil)
}

// TestPanicSafeJob: a request whose params would panic deep inside the
// simulator must fail cleanly (400 from validation) and never kill the
// server.
func TestPanicSafeJob(t *testing.T) {
	_, ts := testServer(t)
	bad := replayParams
	bad.Miners = -1
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		JobRequest{Type: "replay_sweep", Seed: 1, Runs: 1, Replay: &bad},
		http.StatusBadRequest, nil)
	// Server still alive.
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, nil)
}

// TestBadRequests covers the API's error surface.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodPost, "/v1/games", "not a game", http.StatusBadRequest},
		{http.MethodGet, "/v1/games/g-nope", nil, http.StatusNotFound},
		{http.MethodPost, "/v1/jobs", JobRequest{Type: "bogus"}, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", JobRequest{Type: "learn_sweep", GameID: "g-nope", Runs: 1}, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", JobRequest{Type: "learn_sweep", Gen: &core.GenSpec{Miners: 3, Coins: 2}}, http.StatusBadRequest},
		{http.MethodGet, "/v1/jobs/job-404", nil, http.StatusNotFound},
		{http.MethodGet, "/v1/jobs/job-404/result", nil, http.StatusNotFound},
		{http.MethodDelete, "/v1/jobs/job-404", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s_%s", c.method, c.path), func(t *testing.T) {
			doJSON(t, c.method, ts.URL+c.path, c.body, c.want, nil)
		})
	}
}

// TestHandleOrderBoundedUnderChurn: the documented SDK flow (Submit → Wait
// → Result → Release) keeps the handle table near-empty, but every mint
// appends to handleOrder — the sweep must bound that slice too, or a
// long-lived server leaks one entry per request.
func TestHandleOrderBoundedUnderChurn(t *testing.T) {
	s := New(1)
	defer s.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < 5*engine.DefaultRetention; i++ {
		jh := s.mintHandleLocked("job-bogus", "")
		// Immediate release, as a Submit→Release client produces.
		delete(s.handles, jh.Handle)
		if s.refs["job-bogus"]--; s.refs["job-bogus"] <= 0 {
			delete(s.refs, "job-bogus")
		}
	}
	if len(s.handleOrder) > 2*engine.DefaultRetention+1 {
		t.Fatalf("handleOrder grew to %d entries under churn", len(s.handleOrder))
	}
}

// TestWriteJSONMarshalFailureIs500: writeJSON used to write the success
// header before encoding, so a marshal failure emitted a truncated 200
// body; it must buffer first and degrade to a clean 500 error document.
func TestWriteJSONMarshalFailureIs500(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, math.NaN()) // json: unsupported value
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("500 body is not valid JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if e["error"] == "" {
		t.Fatalf("500 body carries no error: %s", rec.Body.Bytes())
	}

	// The happy path is unchanged: chosen code, indented JSON.
	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusCreated, map[string]int{"n": 1})
	if rec.Code != http.StatusCreated || rec.Body.String() != "{\n  \"n\": 1\n}\n" {
		t.Fatalf("happy path changed: %d %q", rec.Code, rec.Body.String())
	}
}

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return &buf
}

var replayParams = replay.ScenarioParams{Miners: 30, Epochs: 24 * 6, SpikeHour: 24 * 2}
