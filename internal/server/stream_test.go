// Result data plane tests: the ?range= endpoint, result schemas in the
// catalog, SSE result-range replay across reconnects, the SDK's StreamResult,
// and the restart property — persisted ranges mean only the unfinished
// suffix recomputes, and the assembled bytes match an uninterrupted run.
package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
)

// streamSpec is the data-plane test kind: task i yields 1000+3*i (independent
// of Name, so runs under different names are byte-comparable), tasks at or
// past Free block on the per-Name gate, and every COMPLETED execution is
// counted per (Name, task) — a task parked in the gate that gets canceled
// never counts, so run counts measure exactly the executions whose results
// the engine saw.
type streamSpec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Free int    `json:"free"`
}

func (s streamSpec) Kind() string { return "test_stream" }
func (s streamSpec) Tasks() int   { return s.N }
func (s streamSpec) RunTask(ctx context.Context, i int, _ *rng.Rand) (any, error) {
	if i >= s.Free {
		select {
		case <-gateChan(s.Name):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	recordRun(s.Name, i)
	return 1000 + 3*i, nil
}
func (s streamSpec) Aggregate(results []any) (any, error) {
	sum := 0
	for _, r := range results {
		sum += r.(int)
	}
	return sum, nil
}
func (s streamSpec) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }
func (s streamSpec) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

var (
	streamRunsMu sync.Mutex
	streamRuns   = map[string]map[int]int{} // spec name → task → completed executions

	// streamNameSeq makes gate names unique per test invocation: gates are
	// process-global and openGate closes them permanently, so a reused name
	// under -count>1 would start life with its gate already open.
	streamNameSeq atomic.Int64
)

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, streamNameSeq.Add(1))
}

func recordRun(name string, task int) {
	streamRunsMu.Lock()
	defer streamRunsMu.Unlock()
	m := streamRuns[name]
	if m == nil {
		m = map[int]int{}
		streamRuns[name] = m
	}
	m[task]++
}

func runCounts(name string) map[int]int {
	streamRunsMu.Lock()
	defer streamRunsMu.Unlock()
	out := map[int]int{}
	for task, n := range streamRuns[name] {
		out[task] = n
	}
	return out
}

func init() {
	engine.RegisterSpec("test_stream", 1, engine.DecodeJSON[streamSpec](),
		engine.SchemaObject(map[string]*engine.Schema{
			"name": engine.SchemaString("gate namespace"),
			"n":    engine.SchemaInt("number of tasks"),
			"free": engine.SchemaInt("tasks below this index run ungated"),
		}))
	rs := engine.SchemaInt("sum of per-task values")
	rs.Defs = map[string]*engine.Schema{"task": engine.SchemaInt("per-task value, 1000+3*i")}
	engine.RegisterResultCodec("test_stream", 1, engine.ResultJSON[int](), rs)
}

// ---- helpers ----

func streamDoc(i int) string { return fmt.Sprint(1000 + 3*i) }

// waitWatermark polls the v1 status until the job's ledger watermark covers
// [0, want).
func waitWatermark(t *testing.T, base, jobID string, want int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st := statusV1(t, base, jobID); st.Progress.Watermark >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s watermark never reached %d", jobID, want)
}

func getStatusCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

type rangeBody struct {
	ID      string            `json:"id"`
	Kind    string            `json:"kind"`
	Lo      int               `json:"lo"`
	Hi      int               `json:"hi"`
	Total   int               `json:"total"`
	Results []json.RawMessage `json:"results"`
}

func getRange(t *testing.T, base, handle string, lo, hi int) rangeBody {
	t.Helper()
	var out rangeBody
	raw := rawGet(t, fmt.Sprintf("%s/v2/jobs/%s/result?range=%d-%d", base, handle, lo, hi))
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResultRangeEndpoint: completed spans are served mid-run; incomplete
// spans are 409, malformed or out-of-bounds spans 400, and kinds without a
// TaskCoder 410.
func TestResultRangeEndpoint(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	spec := streamSpec{Name: uniqueName("range-endpoint"), N: 8, Free: 4}
	defer openGate(spec.Name)
	h, err := c.Submit(ctx, "test_stream", 7, spec)
	if err != nil {
		t.Fatal(err)
	}
	jobID := h.Submitted.ID
	waitWatermark(t, base, jobID, spec.Free)

	body := getRange(t, base, h.ID(), 0, 4)
	if body.Lo != 0 || body.Hi != 4 || body.Total != 8 || len(body.Results) != 4 {
		t.Fatalf("range body = %+v", body)
	}
	for i, d := range body.Results {
		if string(d) != streamDoc(i) {
			t.Fatalf("task %d doc = %s, want %s", i, d, streamDoc(i))
		}
	}

	rangeURL := func(q string) string { return base + "/v2/jobs/" + h.ID() + "/result?range=" + q }
	if code := getStatusCode(t, rangeURL("4-8")); code != http.StatusConflict {
		t.Fatalf("incomplete span status = %d, want 409", code)
	}
	if code := getStatusCode(t, rangeURL("0-99")); code != http.StatusBadRequest {
		t.Fatalf("out-of-bounds span status = %d, want 400", code)
	}
	if code := getStatusCode(t, rangeURL("abc")); code != http.StatusBadRequest {
		t.Fatalf("malformed span status = %d, want 400", code)
	}

	openGate(spec.Name)
	waitV1Done(t, base, jobID)
	body = getRange(t, base, h.ID(), 0, 8)
	if len(body.Results) != 8 || string(body.Results[7]) != streamDoc(7) {
		t.Fatalf("finished range body = %+v", body)
	}

	// A kind without a TaskCoder has no ledger: 410, even once finished.
	gh, err := c.Submit(ctx, "test_gated", 1, gatedSpec{Name: "range-no-ledger", N: 2, Free: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitV1Done(t, base, gh.Submitted.ID)
	if code := getStatusCode(t, base+"/v2/jobs/"+gh.ID()+"/result?range=0-1"); code != http.StatusGone {
		t.Fatalf("no-ledger span status = %d, want 410", code)
	}
}

// TestCatalogServesResultSchemas: every built-in kind (and the test kind)
// publishes a result schema whose $defs carry the per-task document shape
// the client SDK validates streamed results against.
func TestCatalogServesResultSchemas(t *testing.T) {
	c := client.New(v2Server(t))
	ctx := context.Background()
	for _, kind := range []string{"learn_sweep", "design_sweep", "replay_sweep", "equilibrium_sweep", "test_stream"} {
		entry, err := c.Spec(ctx, kind)
		if err != nil {
			t.Fatal(err)
		}
		if entry.ResultSchema == nil {
			t.Fatalf("%s: catalog entry has no result schema", kind)
		}
		if entry.ResultSchema.Defs["task"] == nil {
			t.Fatalf("%s: result schema has no task $def", kind)
		}
	}
}

type sseEvent struct {
	id, event, data string
}

// readSSE reads one complete SSE event (through its terminating blank line).
func readSSE(sc *bufio.Scanner) (sseEvent, bool) {
	var ev sseEvent
	seen := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if seen {
				return ev, true
			}
		case strings.HasPrefix(line, "id:"):
			seen = true
			ev.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			seen = true
			ev.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			seen = true
			ev.data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	return ev, false
}

func openSSE(t *testing.T, ctx context.Context, url, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE connect: %d", resp.StatusCode)
	}
	return resp
}

// TestSSEReconnectReplaysResultRanges: a client that reconnects with the
// composite Last-Event-ID it last saw resumes result-range events exactly at
// its acknowledged watermark — no span is skipped and none is re-delivered.
func TestSSEReconnectReplaysResultRanges(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := streamSpec{Name: uniqueName("sse-replay"), N: 6, Free: 3}
	defer openGate(spec.Name)
	h, err := c.Submit(ctx, "test_stream", 7, spec)
	if err != nil {
		t.Fatal(err)
	}
	eventsURL := base + "/v2/jobs/" + h.ID() + "/events"

	resp := openSSE(t, ctx, eventsURL, "")
	sc := bufio.NewScanner(resp.Body)
	covered := 0
	var saved string
	for covered < spec.Free {
		ev, ok := readSSE(sc)
		if !ok {
			t.Fatal("event stream ended before the free prefix completed")
		}
		if ev.id != "" {
			saved = ev.id
		}
		if ev.event != "result-range" {
			continue
		}
		var rr struct{ Lo, Hi int }
		if err := json.Unmarshal([]byte(ev.data), &rr); err != nil {
			t.Fatalf("result-range data %q: %v", ev.data, err)
		}
		if rr.Lo != covered {
			t.Fatalf("result-range gap: lo=%d, covered=%d", rr.Lo, covered)
		}
		covered = rr.Hi
	}
	resp.Body.Close()
	if saved == "" {
		t.Fatal("no event id observed before disconnect")
	}

	openGate(spec.Name)
	resp = openSSE(t, ctx, eventsURL, saved)
	defer resp.Body.Close()
	sc = bufio.NewScanner(resp.Body)
	for {
		ev, ok := readSSE(sc)
		if !ok {
			t.Fatal("resumed stream ended before the end event")
		}
		if ev.event == "result-range" {
			var rr struct{ Lo, Hi int }
			if err := json.Unmarshal([]byte(ev.data), &rr); err != nil {
				t.Fatalf("result-range data %q: %v", ev.data, err)
			}
			if rr.Lo != covered {
				t.Fatalf("resumed result-range lo=%d, want %d (skip or duplicate)", rr.Lo, covered)
			}
			covered = rr.Hi
		}
		if ev.event == "end" {
			break
		}
	}
	if covered != spec.N {
		t.Fatalf("resumed stream covered [0,%d), want [0,%d)", covered, spec.N)
	}
}

// TestStreamResultClient: the SDK streams every per-task document in order,
// schema-validated, and returns the terminal status.
func TestStreamResultClient(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	spec := streamSpec{Name: "stream-client", N: 6, Free: 6}
	h, err := c.Submit(ctx, "test_stream", 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	st, err := h.StreamResult(ctx, func(task int, doc json.RawMessage) error {
		if task != len(got) {
			t.Fatalf("task %d delivered out of order (have %d)", task, len(got))
		}
		got = append(got, string(doc))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != engine.StateDone {
		t.Fatalf("terminal state = %s", st.State)
	}
	if len(got) != spec.N {
		t.Fatalf("streamed %d docs, want %d", len(got), spec.N)
	}
	for i, d := range got {
		if d != streamDoc(i) {
			t.Fatalf("task %d doc = %s, want %s", i, d, streamDoc(i))
		}
	}
}

// openPersistentW is openPersistent with a caller-chosen worker count — the
// restart property varies workers across lives to show the assembled bytes
// never depend on parallelism.
func openPersistentW(t *testing.T, dir string, workers int) *persistentServer {
	t.Helper()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.NewWithOptions(workers, server.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	p := &persistentServer{s: s, ts: ts, st: st, URL: ts.URL}
	t.Cleanup(p.shutdown)
	return p
}

// waitRangeCoverage polls the store until the job's persisted range records
// cover [0, want) contiguously.
func waitRangeCoverage(t *testing.T, st *store.File, jobID string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		cov := 0
		for _, rr := range snap.Ranges[jobID] {
			if rr.Lo <= cov && rr.End() > cov {
				cov = rr.End()
			}
		}
		if cov >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never persisted range coverage %d", jobID, want)
}

// TestStreamPropertyRestart is the acceptance property for the result data
// plane: across (workers-before, workers-after, kill-point) combinations, a
// job killed mid-run and rehydrated recomputes ONLY the tasks above the
// persisted watermark (every task executes exactly once across both lives),
// and the range-assembled documents and aggregate are byte-identical to an
// uninterrupted single-shot run.
func TestStreamPropertyRestart(t *testing.T) {
	ctx := context.Background()

	// One-shot baselines, one per task count used below.
	baseline := map[int]rangeBody{}
	for _, n := range []int{20, 24} {
		base := v2Server(t)
		c := client.New(base)
		spec := streamSpec{Name: fmt.Sprintf("prop-oneshot-%d", n), N: n, Free: n}
		h, err := c.Submit(ctx, "test_stream", 7, spec)
		if err != nil {
			t.Fatal(err)
		}
		waitV1Done(t, base, h.Submitted.ID)
		baseline[n] = getRange(t, base, h.ID(), 0, n)
	}

	trials := []struct {
		w1, w2, kill, n int
	}{
		{1, 4, 5, 20},
		{4, 2, 0, 20},
		{8, 3, 13, 24},
		{2, 7, 19, 24},
	}
	for ti, tr := range trials {
		t.Run(fmt.Sprintf("w%d_w%d_kill%d", tr.w1, tr.w2, tr.kill), func(t *testing.T) {
			name := uniqueName(fmt.Sprintf("prop-restart-%d", ti))
			defer openGate(name)
			dir := t.TempDir()

			p := openPersistentW(t, dir, tr.w1)
			c := client.New(p.URL)
			spec := streamSpec{Name: name, N: tr.n, Free: tr.kill}
			h, err := c.Submit(ctx, "test_stream", 7, spec)
			if err != nil {
				t.Fatal(err)
			}
			jobID := h.Submitted.ID
			// The free prefix completes and its spans land in the store;
			// everything past the kill point is parked in the gate.
			waitRangeCoverage(t, p.st, jobID, tr.kill)
			p.shutdown()

			p2 := openPersistentW(t, dir, tr.w2)
			openGate(name)
			waitV1Done(t, p2.URL, jobID)

			counts := runCounts(name)
			for i := 0; i < tr.n; i++ {
				if counts[i] != 1 {
					t.Fatalf("task %d executed %d times across both lives, want exactly 1 (counts=%v)",
						i, counts[i], counts)
				}
			}

			got := getRange(t, p2.URL, h.ID(), 0, tr.n)
			want := baseline[tr.n]
			if len(got.Results) != len(want.Results) {
				t.Fatalf("assembled %d docs, baseline %d", len(got.Results), len(want.Results))
			}
			for i := range got.Results {
				if string(got.Results[i]) != string(want.Results[i]) {
					t.Fatalf("task %d doc = %s, baseline %s", i, got.Results[i], want.Results[i])
				}
			}
			var agg, aggBase struct {
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(rawGet(t, p2.URL+"/v2/jobs/"+h.ID()+"/result"), &agg); err != nil {
				t.Fatal(err)
			}
			aggBase.Result = json.RawMessage(fmt.Sprint(sumStreamDocs(tr.n)))
			if string(agg.Result) != string(aggBase.Result) {
				t.Fatalf("aggregate = %s, want %s", agg.Result, aggBase.Result)
			}

			// The done record keeps the job's spans — a later restart must
			// still serve ?range from them — and by then they must cover
			// every task contiguously from 0.
			waitRecordState(t, p2.st, jobID, store.JobDone)
			snap, err := p2.st.Load()
			if err != nil {
				t.Fatal(err)
			}
			recs := snap.Ranges[jobID]
			if len(recs) != 1 || recs[0].Lo != 0 || len(recs[0].Results) != tr.n {
				t.Fatalf("done job's persisted ranges = %+v, want one [0,%d) span", recs, tr.n)
			}
		})
	}
}

func sumStreamDocs(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += 1000 + 3*i
	}
	return sum
}
