package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/traffic"
)

// clientKey is the request-context key carrying the authenticated client
// identity ("" on an open server).
type clientKey struct{}

// clientFrom returns the client identity protect stored on the request
// context ("" on an open server or an unwrapped handler).
func clientFrom(r *http.Request) string {
	c, _ := r.Context().Value(clientKey{}).(string)
	return c
}

// apiKeyFrom extracts the presented API key: "Authorization: Bearer <key>"
// (what the client SDK sends) or the plainer "X-API-Key: <key>" for curl
// ergonomics. An empty return means no key was presented.
func apiKeyFrom(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// protect wraps a handler with admission control: the request's API key is
// resolved to a client identity (401 with WWW-Authenticate when a keyring is
// configured and the key is missing or unknown), and — for submission
// endpoints (limit=true) — the client's token bucket is charged, with an
// empty bucket answered 429 plus a Retry-After header. The resolved identity
// rides the request context (clientFrom) into submission attribution and
// handle ownership. On a zero-config controller every request passes as the
// anonymous client, byte-identical to the pre-traffic server.
//
// The /dist/* endpoints are deliberately not protected: the worker fleet
// sits inside the trust boundary (same operator as the server), and its
// own catalog-fingerprint check already rejects foreign workers.
func (s *Server) protect(h http.HandlerFunc, limit bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client, ok := s.traffic.Authenticate(apiKeyFrom(r))
		if !ok {
			s.traffic.NoteUnauthorized()
			w.Header().Set("WWW-Authenticate", `Bearer realm="gocserve"`)
			writeError(w, http.StatusUnauthorized, errors.New("missing or unknown API key"))
			return
		}
		if limit {
			if retryAfter, admitted := s.traffic.Admit(client); !admitted {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(retryAfter)))
				writeError(w, http.StatusTooManyRequests, errors.New("submission rate limit exceeded"))
				return
			}
		}
		h(w, r.WithContext(context.WithValue(r.Context(), clientKey{}, client)))
	}
}

// retryAfterSecs renders a limiter wait as Retry-After whole seconds:
// ceiling, minimum 1 — the header (and the batch per-item hint) is integral,
// and a sub-second wait rounded to 0 would read as "retry immediately".
func retryAfterSecs(retryAfter time.Duration) int {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// parsePriority validates an envelope's priority class. An unknown class is
// a schema violation against the envelope contract — mapped to 422 with a
// JSON-pointer path, exactly like a spec-document shape mismatch — so typos
// fail loudly instead of silently running at normal priority.
func parsePriority(priority string) (traffic.Class, error) {
	class, err := traffic.ParseClass(priority)
	if err != nil {
		return class, &engine.SchemaError{Path: "/priority", Msg: err.Error()}
	}
	return class, nil
}
