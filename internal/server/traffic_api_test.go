// Admission-control API tests: API-key auth (401), handle ownership (403),
// submission rate limiting (429 + Retry-After), priority-class validation
// (422), and the client SDK's retry/backoff behavior against a rate-limited
// server. External test package so the flows run through the public SDK.
package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/server"
	"gameofcoins/internal/traffic"
)

// trafficServer starts a server under the given admission-control config.
func trafficServer(t *testing.T, cfg traffic.Config) string {
	t.Helper()
	s, err := server.NewWithOptions(4, server.Options{Traffic: traffic.New(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func testKeyring(t *testing.T) *traffic.Keyring {
	t.Helper()
	k, err := traffic.ParseKeyring(strings.NewReader("alpha:alpha-secret-1\nbeta:beta-secret-22"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func apiStatus(t *testing.T, err error) *client.APIError {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *client.APIError, got %T: %v", err, err)
	}
	return apiErr
}

// TestAuthGateAndHandleOwnership: with a keyring, unkeyed submissions 401,
// keyed ones run and carry the client identity on the handle, and one
// tenant cannot release (and thereby cancel) another tenant's handle.
func TestAuthGateAndHandleOwnership(t *testing.T) {
	base := trafficServer(t, traffic.Config{Keyring: testKeyring(t)})
	ctx := context.Background()

	if _, err := client.New(base).Submit(ctx, "toy_sum", 1, toySpec{N: 4}); err == nil {
		t.Fatal("unkeyed submit passed an enforced keyring")
	} else if apiStatus(t, err).StatusCode != http.StatusUnauthorized {
		t.Fatalf("unkeyed submit: %v, want 401", err)
	}
	if _, err := client.New(base, client.WithAPIKey("wrong-key-9")).Submit(ctx, "toy_sum", 1, toySpec{N: 4}); err == nil {
		t.Fatal("unknown key passed an enforced keyring")
	} else if apiStatus(t, err).StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: %v, want 401", err)
	}

	alpha := client.New(base, client.WithAPIKey("alpha-secret-1"))
	h, err := alpha.Submit(ctx, "toy_sum", 1, toySpec{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Submitted.Client != "alpha" {
		t.Fatalf("handle client = %q, want alpha", h.Submitted.Client)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// beta attaches to the same job via dedup, but must not be able to
	// release alpha's claim on it.
	beta := client.New(base, client.WithAPIKey("beta-secret-22"))
	hb, err := beta.Submit(ctx, "toy_sum", 1, toySpec{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Submitted.Cached {
		t.Fatal("identical cross-tenant submission did not dedupe")
	}
	// Ownership gates reads too, not just release: handles are sequential,
	// so a foreign status, result, or event poll must 403, or any tenant
	// could enumerate handles and read other tenants' results.
	for _, path := range []string{"", "/result", "/events"} {
		req, _ := http.NewRequest(http.MethodGet, base+"/v2/jobs/"+h.ID()+path, nil)
		req.Header.Set("Authorization", "Bearer beta-secret-22")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("cross-tenant GET %s = %d, want 403", path, resp.StatusCode)
		}
	}
	// Each tenant still reads through its own handle to the shared job.
	if _, err := hb.Wait(ctx); err != nil {
		t.Fatalf("beta reading via its own handle: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v2/jobs/"+h.ID(), nil)
	req.Header.Set("Authorization", "Bearer beta-secret-22")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant release = %d, want 403", resp.StatusCode)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatalf("owner release: %v", err)
	}
	if err := hb.Release(ctx); err != nil {
		t.Fatalf("beta releasing its own handle: %v", err)
	}
}

// TestV1CancelOwnership: with a keyring, DELETE /v1/jobs/{id} — whose job
// IDs any keyed client can enumerate via GET /v1/jobs — is gated on the
// job's engine attribution: a foreign tenant's cancel 403s, and even the
// submitter's cancel 409s while another tenant holds a live v2 handle on
// the shared job. After that handle is released, the submitter's cancel
// goes through.
func TestV1CancelOwnership(t *testing.T) {
	base := trafficServer(t, traffic.Config{Keyring: testKeyring(t)})
	ctx := context.Background()

	alpha := client.New(base, client.WithAPIKey("alpha-secret-1"))
	h, err := alpha.Submit(ctx, "toy_sum", 3, toySpec{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	jobID := h.Submitted.Status.ID

	v1cancel := func(key string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+jobID, nil)
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := v1cancel("beta-secret-22"); code != http.StatusForbidden {
		t.Fatalf("cross-tenant v1 cancel = %d, want 403", code)
	}

	// beta attaches to the shared job via dedup; now even alpha's v1 cancel
	// must not tear it down from under beta's handle.
	beta := client.New(base, client.WithAPIKey("beta-secret-22"))
	hb, err := beta.Submit(ctx, "toy_sum", 3, toySpec{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Submitted.Cached {
		t.Fatal("identical cross-tenant submission did not dedupe")
	}
	if code := v1cancel("alpha-secret-1"); code != http.StatusConflict {
		t.Fatalf("submitter v1 cancel with a foreign handle live = %d, want 409", code)
	}
	if err := hb.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if code := v1cancel("alpha-secret-1"); code != http.StatusOK {
		t.Fatalf("submitter v1 cancel = %d, want 200", code)
	}
}

// TestRateLimit429CarriesRetryAfter: past the burst, submissions 429 with a
// positive Retry-After, and /healthz reports the throttle counters.
func TestRateLimit429CarriesRetryAfter(t *testing.T) {
	base := trafficServer(t, traffic.Config{Keyring: testKeyring(t), Rate: 0.5, Burst: 2})
	ctx := context.Background()
	// Retries off: this client wants to see the raw 429s.
	alpha := client.New(base, client.WithAPIKey("alpha-secret-1"), client.WithRetryLimit(0))

	throttled := 0
	var lastErr *client.APIError
	for seed := uint64(0); seed < 4; seed++ {
		_, err := alpha.Submit(ctx, "toy_sum", seed, toySpec{N: 1})
		if err == nil {
			continue
		}
		apiErr := apiStatus(t, err)
		if apiErr.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("unexpected submit error: %v", err)
		}
		throttled++
		lastErr = apiErr
	}
	if throttled != 2 {
		t.Fatalf("throttled %d of 4 submissions at burst 2, want 2", throttled)
	}
	if lastErr.RetryAfter <= 0 {
		t.Fatalf("429 carried RetryAfter %v, want > 0", lastErr.RetryAfter)
	}

	var health struct {
		Traffic traffic.Stats `json:"traffic"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	st := health.Traffic
	if !st.Enforced || st.Clients != 2 {
		t.Fatalf("healthz traffic = %+v, want enforced with 2 clients", st)
	}
	if st.PerClient["alpha"].Admitted != 2 || st.PerClient["alpha"].Throttled != 2 {
		t.Fatalf("alpha stats = %+v, want 2 admitted / 2 throttled", st.PerClient["alpha"])
	}
}

// TestClientRetriesRateLimitedSubmit is the SDK regression test against a
// rate-limited server: a 429 with Retry-After must be waited out and the
// submission retried — not surfaced, and not spun on. The stub server
// rejects the first two attempts and records what the client sent.
func TestClientRetriesRateLimitedSubmit(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("Authorization"); got != "Bearer alpha-secret-1" {
			t.Errorf("Authorization = %q", got)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			//goclint:allow errdrop -- test stub; a failed write fails the test downstream
			_, _ = w.Write([]byte(`{"error":"submission rate limit exceeded"}`))
			return
		}
		w.WriteHeader(http.StatusCreated)
		//goclint:allow errdrop -- test stub
		_, _ = w.Write([]byte(`{"handle":"h-1","clients":1,"id":"job-1","kind":"toy_sum","state":"running","progress":{"done":0,"total":1}}`))
	}))
	defer stub.Close()

	c := client.New(stub.URL, client.WithAPIKey("alpha-secret-1"))
	h, err := c.Submit(context.Background(), "toy_sum", 1, toySpec{N: 1})
	if err != nil {
		t.Fatalf("submit did not survive two 429s: %v", err)
	}
	if h.ID() != "h-1" {
		t.Fatalf("handle = %q", h.ID())
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 429s then success)", calls.Load())
	}

	// With retries disabled the first 429 surfaces, with its Retry-After.
	calls.Store(0)
	raw := client.New(stub.URL, client.WithAPIKey("alpha-secret-1"), client.WithRetryLimit(0))
	_, err = raw.Submit(context.Background(), "toy_sum", 2, toySpec{N: 1})
	apiErr := apiStatus(t, err)
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.RetryAfter <= 0 {
		t.Fatalf("retry-disabled submit: %+v", apiErr)
	}
}

// TestBatchPartialThrottleRetryAfter: batch items are admitted individually
// against the submitter's bucket, so a batch bigger than the remaining
// budget is *partially* throttled — the items within budget mint handles,
// the rest 429 in their own slots with per-item Retry-After hints, exactly
// the signal a single throttled submission gets in its header.
func TestBatchPartialThrottleRetryAfter(t *testing.T) {
	base := trafficServer(t, traffic.Config{Keyring: testKeyring(t), Rate: 0.5, Burst: 2})
	ctx := context.Background()
	// Retries off: this test wants to see the raw partial throttle.
	alpha := client.New(base, client.WithAPIKey("alpha-secret-1"), client.WithRetryLimit(0))

	items := make([]client.BatchItem, 4)
	for i := range items {
		items[i] = client.BatchItem{Kind: "toy_sum", Seed: uint64(i + 1), Spec: toySpec{N: i + 1}}
	}
	results, err := alpha.SubmitBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	// Admission is in request order: the burst covers the first two items.
	for i := 0; i < 2; i++ {
		if results[i].Handle == nil {
			t.Fatalf("item %d within the burst failed: %v", i, results[i].Err)
		}
	}
	for i := 2; i < 4; i++ {
		var be *client.BatchError
		if !errors.As(results[i].Err, &be) {
			t.Fatalf("item %d past the burst: got %v, want *client.BatchError", i, results[i].Err)
		}
		if be.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("item %d status = %d, want 429", i, be.StatusCode)
		}
		if be.RetryAfter < time.Second {
			t.Fatalf("item %d RetryAfter = %v, want >= 1s at 0.5/sec", i, be.RetryAfter)
		}
	}
}

// TestClientRetriesThrottledBatchItems is the SDK regression test for
// partial-throttle retries: only the 429 items are resubmitted, after
// waiting out the largest per-item Retry-After hint; minted handles are
// never sent twice. With retries disabled the hint surfaces on the
// BatchError instead.
func TestClientRetriesThrottledBatchItems(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	var sizes []int
	okJob := func(n int) string {
		return fmt.Sprintf(`{"job":{"handle":"h-%d","clients":1,"id":"job-%d","kind":"toy_sum","state":"running","progress":{"done":0,"total":1}}}`, n, n)
	}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode batch request: %v", err)
		}
		mu.Lock()
		sizes = append(sizes, len(req.Jobs))
		mu.Unlock()
		var body string
		if calls.Add(1) == 1 {
			// First attempt: item 0 minted, item 1 throttled with a hint.
			body = `{"results":[` + okJob(1) + `,{"error":"submission rate limit exceeded","code":429,"retry_after":1}]}`
		} else {
			// Retry carries only the throttled item.
			body = `{"results":[` + okJob(2) + `]}`
		}
		//goclint:allow errdrop -- test stub; a failed write fails the test downstream
		_, _ = w.Write([]byte(body))
	}))
	defer stub.Close()

	ctx := context.Background()
	items := []client.BatchItem{
		{Kind: "toy_sum", Seed: 1, Spec: toySpec{N: 1}},
		{Kind: "toy_sum", Seed: 2, Spec: toySpec{N: 2}},
	}
	results, err := client.New(stub.URL).SubmitBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Handle == nil || results[0].Handle.ID() != "h-1" {
		t.Fatalf("item 0 = %+v, want handle h-1 from the first attempt", results[0])
	}
	if results[1].Handle == nil || results[1].Handle.ID() != "h-2" {
		t.Fatalf("item 1 = %+v, want handle h-2 from the retry", results[1])
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", calls.Load())
	}
	mu.Lock()
	gotSizes := append([]int(nil), sizes...)
	mu.Unlock()
	if len(gotSizes) != 2 || gotSizes[0] != 2 || gotSizes[1] != 1 {
		t.Fatalf("attempt sizes = %v, want [2 1] (retry resubmits only the throttled item)", gotSizes)
	}

	// Retries disabled: the partial throttle surfaces as-is, hint attached.
	calls.Store(0)
	results, err = client.New(stub.URL, client.WithRetryLimit(0)).SubmitBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	var be *client.BatchError
	if !errors.As(results[1].Err, &be) || be.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("retry-disabled item 1 = %+v, want a 429 BatchError", results[1].Err)
	}
	if be.RetryAfter != time.Second {
		t.Fatalf("retry-disabled RetryAfter = %v, want 1s", be.RetryAfter)
	}
	if calls.Load() != 1 {
		t.Fatalf("retry-disabled client made %d calls, want 1", calls.Load())
	}
}

// TestPriorityClassValidationAndCaching: unknown classes 422 with a
// JSON-pointer to /priority; valid classes submit fine and share cache
// lines with every other priority (priority never enters the cache key).
func TestPriorityClassValidationAndCaching(t *testing.T) {
	base := trafficServer(t, traffic.Config{})
	ctx := context.Background()
	c := client.New(base)

	_, err := c.Submit(ctx, "toy_sum", 9, toySpec{N: 2}, client.WithPriority("urgent"))
	apiErr := apiStatus(t, err)
	if apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown priority: %v, want 422", err)
	}
	if !strings.Contains(apiErr.Message, "/priority") {
		t.Fatalf("422 message %q does not point at /priority", apiErr.Message)
	}

	high, err := c.Submit(ctx, "toy_sum", 9, toySpec{N: 2}, client.WithPriority("high"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := high.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Same spec and seed at a different priority is the same computation.
	low, err := c.Submit(ctx, "toy_sum", 9, toySpec{N: 2}, client.WithPriority("low"))
	if err != nil {
		t.Fatal(err)
	}
	if !low.Submitted.Cached {
		t.Fatal("priority leaked into the cache key: identical spec+seed recomputed")
	}

	// Batch items carry priority too, with per-item validation.
	results, err := c.SubmitBatch(ctx, []client.BatchItem{
		{Kind: "toy_sum", Seed: 9, Spec: toySpec{N: 2}, Priority: "high"},
		{Kind: "toy_sum", Seed: 9, Spec: toySpec{N: 2}, Priority: "bogus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("valid batch item: %v", results[0].Err)
	}
	var be *client.BatchError
	if !errors.As(results[1].Err, &be) || be.StatusCode != http.StatusUnprocessableEntity || be.Path != "/priority" {
		t.Fatalf("bad-priority batch item: %+v", results[1].Err)
	}
}
