// The v2 API tests live in an external test package so they can exercise the
// server through the public client SDK (which itself imports server for the
// wire types); an in-package test would form an import cycle.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
)

func v2Server(t *testing.T) string {
	t.Helper()
	s := server.New(4)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// ---- test-only spec kinds, registered exactly like third-party ones ----

// toySpec demonstrates the acceptance criterion for the registry redesign: a
// brand-new job kind defined outside internal/server, registered with one
// RegisterSpec call, and runnable end to end over /v2 with the client SDK —
// the server code is never touched.
type toySpec struct {
	N int `json:"n"`
}

func (s toySpec) Kind() string { return "toy_sum" }
func (s toySpec) Tasks() int   { return s.N }
func (s toySpec) Validate() error {
	if s.N <= 0 {
		return errors.New("n must be positive")
	}
	return nil
}
func (s toySpec) RunTask(_ context.Context, i int, _ *rng.Rand) (any, error) { return 2 * i, nil }
func (s toySpec) Aggregate(results []any) (any, error) {
	sum := 0
	for _, r := range results {
		sum += r.(int)
	}
	return sum, nil
}

// gatedSpec blocks its tasks past Free on a per-Name latch, so tests control
// exactly when a running v2 job may finish. Name also keeps distinct tests
// off each other's cache entries.
type gatedSpec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Free int    `json:"free"`
}

var gates sync.Map // name → chan struct{}

func gateChan(name string) chan struct{} {
	ch, _ := gates.LoadOrStore(name, make(chan struct{}))
	return ch.(chan struct{})
}

func openGate(name string) {
	ch := gateChan(name)
	select {
	case <-ch:
	default:
		close(ch)
	}
}

func (s gatedSpec) Kind() string { return "test_gated" }
func (s gatedSpec) Tasks() int   { return s.N }
func (s gatedSpec) RunTask(ctx context.Context, i int, _ *rng.Rand) (any, error) {
	if i >= s.Free {
		select {
		case <-gateChan(s.Name):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return i, nil
}
func (s gatedSpec) Aggregate(results []any) (any, error) { return len(results), nil }

func init() {
	engine.RegisterSpec("toy_sum", 1, engine.DecodeJSON[toySpec](),
		engine.SchemaObject(map[string]*engine.Schema{"n": engine.SchemaInt("number of tasks")}))
	engine.RegisterSpec("test_gated", 1, engine.DecodeJSON[gatedSpec](), nil)
}

// TestToySpecEndToEndOverV2: the registered toy kind is visible in
// /v2/specs and runs through submit → wait → result purely via the SDK.
func TestToySpecEndToEndOverV2(t *testing.T) {
	c := client.New(v2Server(t))
	ctx := context.Background()

	kinds, err := c.SpecKinds(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range kinds {
		found = found || k == "toy_sum"
	}
	if !found {
		t.Fatalf("toy_sum missing from registry listing %v", kinds)
	}

	h, err := c.Submit(ctx, "toy_sum", 9, toySpec{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != engine.StateDone || st.Progress.Total != 10 {
		t.Fatalf("terminal status = %+v", st)
	}
	var sum int
	if err := h.Result(ctx, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 90 { // 2*(0+1+...+9)
		t.Fatalf("sum = %d, want 90", sum)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
	// A released handle is gone.
	if _, err := h.Status(ctx); err == nil {
		t.Fatal("released handle still resolves")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("err = %v, want 404 APIError", err)
		}
	}
}

// TestV1V2Equivalence: the same logical job submitted over /v1 and /v2 hits
// one cache entry (same underlying job) and serves byte-identical results —
// including when the game is passed by registered reference.
func TestV1V2Equivalence(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	game := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}},
		[]core.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 9},
	)
	gameID, err := c.RegisterGame(ctx, game)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		v1   server.JobRequest
		kind string
		spec any
	}{
		{
			name: "equilibrium_sweep",
			v1:   server.JobRequest{Type: "equilibrium_sweep", Seed: 4, Gen: &core.GenSpec{Miners: 4, Coins: 2}, Games: 6},
			kind: "equilibrium_sweep",
			spec: engine.EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 6},
		},
		{
			name: "learn_sweep_by_game_ref",
			v1:   server.JobRequest{Type: "learn_sweep", Seed: 11, GameID: gameID, Schedulers: []string{"random"}, Runs: 8},
			kind: "learn_sweep",
			spec: engine.LearnSweep{GameID: gameID, Schedulers: []string{"random"}, Runs: 8},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// v1 submission, run to completion.
			body, _ := json.Marshal(tc.v1)
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var st1 engine.Status
			if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("v1 submit: %d (%+v)", resp.StatusCode, st1)
			}
			waitV1Done(t, base, st1.ID)

			// v2 submission of the same logical job: must attach to the very
			// same job via the shared cache, not recompute.
			h, err := c.Submit(ctx, tc.kind, tc.v1.Seed, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if !h.Submitted.Cached {
				t.Fatalf("v2 resubmit missed the v1 cache entry: %+v", h.Submitted)
			}
			if h.Submitted.Status.ID != st1.ID {
				t.Fatalf("v2 attached to job %s, v1 ran %s", h.Submitted.Status.ID, st1.ID)
			}

			// Byte-identical result payloads from both surfaces.
			b1 := rawGet(t, base+"/v1/jobs/"+st1.ID+"/result")
			b2 := rawGet(t, base+"/v2/jobs/"+h.ID()+"/result")
			if !bytes.Equal(b1, b2) {
				t.Fatalf("result bodies differ:\n%s\n%s", b1, b2)
			}
		})
	}
}

// TestHandleRefcountSharedJob: two clients dedupe onto one job; releasing
// one handle leaves the other running to completion, and releasing the last
// handle of a different shared job cancels it.
func TestHandleRefcountSharedJob(t *testing.T) {
	base := v2Server(t)
	c1, c2 := client.New(base), client.New(base)
	ctx := context.Background()

	spec := gatedSpec{Name: "refcount-" + strconv.Itoa(time.Now().Nanosecond()), N: 2}
	defer openGate(spec.Name)
	h1, err := c1.Submit(ctx, "test_gated", 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Submit(ctx, "test_gated", 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Submitted.Cached || h2.Submitted.Status.ID != h1.Submitted.Status.ID {
		t.Fatalf("second client not deduped onto the first job: %+v vs %+v", h2.Submitted, h1.Submitted)
	}
	if h1.ID() == h2.ID() {
		t.Fatalf("both clients got the same handle %s", h1.ID())
	}
	if h2.Submitted.Clients != 2 {
		t.Fatalf("clients = %d, want 2", h2.Submitted.Clients)
	}

	// Client 1 walks away. The job must keep running for client 2 — this is
	// the refcount fixing the documented v1 shared-fate footgun.
	if err := h1.Release(ctx); err != nil {
		t.Fatal(err)
	}
	jh, err := h2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if jh.State.Terminal() {
		t.Fatalf("job killed by the other client's release: %+v", jh)
	}
	if jh.Clients != 1 {
		t.Fatalf("clients = %d after one release, want 1", jh.Clients)
	}

	openGate(spec.Name)
	st, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != engine.StateDone {
		t.Fatalf("surviving handle's job ended %s, want done", st.State)
	}
	var n int
	if err := h2.Result(ctx, &n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("result = %d, want 2", n)
	}

	// Releasing the *last* handle of a running job cancels it.
	spec2 := gatedSpec{Name: spec.Name + "-cancel", N: 2}
	defer openGate(spec2.Name)
	h3, err := c1.Submit(ctx, "test_gated", 2, spec2)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := c2.Submit(ctx, "test_gated", 2, spec2)
	if err != nil {
		t.Fatal(err)
	}
	jobID := h3.Submitted.Status.ID
	if err := h4.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h3.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if st := waitV1Terminal(t, base, jobID); st.State != engine.StateCanceled {
		t.Fatalf("job state after last release = %s, want canceled", st.State)
	}
}

// TestV1AttachedJobPinnedAgainstV2Release: a job a v1 client submitted has
// no handle accounting, so releasing the last v2 handle must NOT cancel it —
// only an explicit v1 DELETE does.
func TestV1AttachedJobPinnedAgainstV2Release(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	// The v1 wire form has no custom kinds, so the slow job here is a large
	// learn sweep (far too big to finish during the test).
	v1req := server.JobRequest{Type: "learn_sweep", Seed: 9,
		Gen: &core.GenSpec{Miners: 20, Coins: 4}, Schedulers: []string{"random"}, Runs: 200000}
	body, _ := json.Marshal(v1req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st1 engine.Status
	if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A v2 client attaches to the same job and is its only handle holder.
	h, err := c.SubmitLearnSweep(ctx, engine.LearnSweep{
		Gen: core.GenSpec{Miners: 20, Coins: 4}, Schedulers: []string{"random"}, Runs: 200000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Submitted.Cached || h.Submitted.Status.ID != st1.ID {
		t.Fatalf("v2 did not attach to the v1 job: %+v vs %s", h.Submitted, st1.ID)
	}
	// Releasing the only v2 handle must leave the v1 client's job running.
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if st := statusV1(t, base, st1.ID); st.State.Terminal() {
		t.Fatalf("v2 release canceled a v1 client's job: %+v", st)
	}
	// The v1 client can still cancel explicitly.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st1.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if st := waitV1Terminal(t, base, st1.ID); st.State != engine.StateCanceled {
		t.Fatalf("v1 DELETE did not cancel: %+v", st)
	}
}

// TestSSEProgressStream: the SDK's Watch (SSE under the hood) delivers at
// least one genuine progress event (0 < done < total, non-terminal) and the
// terminal event for a multi-task job.
func TestSSEProgressStream(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	spec := gatedSpec{Name: "sse-" + strconv.Itoa(time.Now().Nanosecond()), N: 6, Free: 3}
	defer openGate(spec.Name)
	h, err := c.Submit(ctx, "test_gated", 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := h.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var progressEvents int
	var last engine.Status
	for st := range ch {
		last = st
		if !st.State.Terminal() && st.Progress.Done > 0 && st.Progress.Done < st.Progress.Total {
			progressEvents++
			if st.Progress.Done >= spec.Free {
				openGate(spec.Name) // saw the mid-job progress; let it finish
			}
		}
	}
	if progressEvents == 0 {
		t.Fatal("no mid-job progress event observed on the SSE stream")
	}
	if last.State != engine.StateDone || last.Progress.Done != spec.N {
		t.Fatalf("terminal event = %+v", last)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestV2BadEnvelopes covers the v2 error surface: unknown kind and version,
// malformed envelope, failed validation, unknown game ref (400); schema
// mismatches — misspelled or mistyped spec fields — are 422 with a
// JSON-pointer "path" into the spec document.
func TestV2BadEnvelopes(t *testing.T) {
	base := v2Server(t)
	for name, c := range map[string]struct {
		body string
		code int
		path string
	}{
		"unknown_kind":      {body: `{"kind":"bogus_sweep","seed":1,"spec":{}}`, code: 400},
		"unknown_version":   {body: `{"kind":"equilibrium_sweep@v9","seed":1,"spec":{}}`, code: 400},
		"malformed_version": {body: `{"kind":"equilibrium_sweep@x","seed":1,"spec":{}}`, code: 400},
		"invalid_spec":      {body: `{"kind":"equilibrium_sweep","seed":1,"spec":{"games":0}}`, code: 400},
		"unknown_game":      {body: `{"kind":"learn_sweep","seed":1,"spec":{"game_id":"g-nope","runs":3}}`, code: 400},
		"envelope_typo":     {body: `{"knd":"equilibrium_sweep","seed":1}`, code: 400},
		"replay_inner_seed": {body: `{"kind":"replay_sweep","seed":1,"spec":{"params":{"Miners":30,"Epochs":48,"SpikeHour":24,"Seed":9},"runs":1}}`, code: 400},
		"unknown_field":     {body: `{"kind":"equilibrium_sweep","seed":1,"spec":{"gmaes":5}}`, code: 422, path: "/gmaes"},
		"mistyped_field":    {body: `{"kind":"equilibrium_sweep","seed":1,"spec":{"games":"many"}}`, code: 422, path: "/games"},
		"nested_mistype":    {body: `{"kind":"learn_sweep","seed":1,"spec":{"gen":{"Miners":"eight"},"runs":3}}`, code: 422, path: "/gen/Miners"},
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(base+"/v2/jobs", "application/json", bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.code {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.code)
			}
			var e struct {
				Error string `json:"error"`
				Path  string `json:"path"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body undecodable: %v %+v", err, e)
			}
			if e.Path != c.path {
				t.Fatalf("path = %q, want %q", e.Path, c.path)
			}
		})
	}
}

func rawGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b)
	}
	return b
}

func statusV1(t *testing.T, base, jobID string) engine.Status {
	t.Helper()
	var st engine.Status
	if err := json.Unmarshal(rawGet(t, base+"/v1/jobs/"+jobID), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitV1Terminal(t *testing.T, base, jobID string) engine.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st engine.Status
		if err := json.Unmarshal(rawGet(t, base+"/v1/jobs/"+jobID), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return engine.Status{}
}

func waitV1Done(t *testing.T, base, jobID string) {
	t.Helper()
	if st := waitV1Terminal(t, base, jobID); st.State != engine.StateDone {
		t.Fatalf("job %s ended %s: %s", jobID, st.State, st.Error)
	}
}
