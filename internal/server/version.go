package server

// Version identifies the gocserve server build. It is reported by GET
// /healthz and `gocserve -version` alongside the catalog fingerprint, so an
// operator can tell which wire surface a replica serves without submitting
// anything. Bump it when the HTTP surface changes; the catalog fingerprint
// tracks spec-registry changes on its own.
const Version = "0.6.0"
