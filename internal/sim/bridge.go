package sim

import (
	"fmt"

	"gameofcoins/internal/core"
)

// SnapshotGame freezes the market's current state into a formal game
// G_{Π,C,F}: miners are the agent fleet with their hashrates, coins are the
// simulated coin markets, and F is the current weight vector. The returned
// configuration is the fleet's current assignment translated to the game's
// sorted miner order.
//
// This is the bridge between the two halves of the library: the market
// stack produces weights, and the game stack analyzes them (equilibria,
// potential, reward design). Integration tests use it to verify that a
// market at rest is (approximately) a pure equilibrium of its snapshot.
func (s *Simulator) SnapshotGame(opts ...core.Option) (*core.Game, core.Config, error) {
	miners := make([]core.Miner, len(s.agents))
	for i, a := range s.agents {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("agent-%d", i)
		}
		// Disambiguate duplicate names so the sorted order is stable and
		// the config translation below is well-defined.
		miners[i] = core.Miner{Name: fmt.Sprintf("%s#%04d", name, i), Power: a.Power}
	}
	coins := make([]core.Coin, len(s.coins))
	for c := range coins {
		coins[c] = core.Coin{Name: s.coins[c].Chain.Name()}
	}
	g, err := core.NewGame(miners, coins, s.Weights(), opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: snapshot game: %w", err)
	}
	// Translate the assignment into the game's sorted miner order by
	// matching the disambiguated names.
	byName := make(map[string]int, len(miners))
	for i, m := range miners {
		byName[m.Name] = s.assignment[i]
	}
	cfg := make(core.Config, g.NumMiners())
	for p := 0; p < g.NumMiners(); p++ {
		cfg[p] = byName[g.Miner(p).Name]
	}
	if err := g.ValidateConfig(cfg); err != nil {
		return nil, nil, fmt.Errorf("sim: snapshot config: %w", err)
	}
	return g, cfg, nil
}
