package sim

import (
	"testing"

	"gameofcoins/internal/mining"
)

func TestSnapshotGameShape(t *testing.T) {
	s := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	g, cfg, err := s.SnapshotGame()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMiners() != len(s.Agents()) || g.NumCoins() != 2 {
		t.Fatalf("snapshot sizes: %d miners, %d coins", g.NumMiners(), g.NumCoins())
	}
	if err := g.ValidateConfig(cfg); err != nil {
		t.Fatal(err)
	}
	// Weights transfer.
	w := s.Weights()
	for c := 0; c < 2; c++ {
		if g.Reward(c) != w[c] {
			t.Fatalf("reward %d = %v, want %v", c, g.Reward(c), w[c])
		}
	}
	// Per-coin powers must agree between sim and game views.
	simPowers := s.CoinPowers()
	for c := 0; c < 2; c++ {
		if diff := g.CoinPower(cfg, c) - simPowers[c]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("coin %d power: game %v, sim %v", c, g.CoinPower(cfg, c), simPowers[c])
		}
	}
}

// TestMarketRestPointIsGameEquilibrium is the integration bridge test: run
// pure better-response agents to rest, snapshot, and check the snapshot is
// a pure equilibrium of the induced game (with the policy's hysteresis
// translated into the game's epsilon).
func TestMarketRestPointIsGameEquilibrium(t *testing.T) {
	s := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	s.Run(200)
	// After 200 epochs with constant rates the fleet is at rest.
	before := s.Assignment()
	s.Run(1)
	after := s.Assignment()
	for i := range before {
		if before[i] != after[i] {
			t.Skip("fleet still moving; constant-rate rest not reached")
		}
	}
	g, cfg, err := s.SnapshotGame()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEquilibrium(cfg) {
		t.Fatalf("market rest point %v is not an equilibrium of the snapshot game", cfg)
	}
}

func TestSnapshotGameDuplicateNames(t *testing.T) {
	// All agents named "m": disambiguation must keep the bridge coherent.
	s := twoCoinSim(t, 100, 100, mining.Loyal{})
	g, cfg, err := s.SnapshotGame()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if g.TotalPower() != s.TotalPower() {
		t.Fatalf("total power %v != %v", g.TotalPower(), s.TotalPower())
	}
}
