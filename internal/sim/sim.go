// Package sim is the discrete-event market simulator tying together chains
// (internal/chain), exchange rates and weights (internal/market), and miner
// agents (internal/mining).
//
// Time advances in fixed epochs (e.g. one hour). Each epoch:
//
//  1. exchange-rate processes step;
//  2. coin weights F(c) are recomputed from subsidy, fees, and rates;
//  3. agents are visited in random order and may switch coins per their
//     policy (one pass — partial, not to-convergence adjustment, matching
//     real markets where the game state moves before learning settles);
//  4. every chain mines for the epoch under the hashrate now pointed at it,
//     retargeting difficulty as blocks arrive;
//  5. per-coin hashrate shares, rates, and weights are recorded.
//
// The recorded series regenerate Figure 1 of the paper (see
// internal/replay), and the simulator doubles as the workload generator for
// the manipulation experiments.
package sim

import (
	"errors"
	"fmt"

	"gameofcoins/internal/market"
	"gameofcoins/internal/mining"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/trace"
)

// Config assembles a simulation.
type Config struct {
	Coins  []*market.CoinMarket
	Agents []mining.Agent
	// Assignment is the initial coin of each agent; defaults to everyone on
	// coin 0 when nil.
	Assignment []int
	// EpochSeconds is the decision/recording interval (default 3600).
	EpochSeconds float64
	// Seed drives all randomness (rate paths, agent order, chains).
	Seed uint64
}

// Hook observes each completed epoch; see Simulator.OnEpoch.
type Hook func(epoch int, s *Simulator)

// Simulator holds live simulation state.
type Simulator struct {
	coins      []*market.CoinMarket
	agents     []mining.Agent
	assignment []int
	epochSecs  float64
	rand       *rng.Rand
	epoch      int
	hooks      []Hook

	// Recorded series, one per coin: hashrate share, weight, rate.
	ShareSeries  []*trace.Series
	WeightSeries []*trace.Series
	RateSeries   []*trace.Series
	// SwitchSeries counts agent switches per epoch.
	SwitchSeries *trace.Series
}

// New validates cfg and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if len(cfg.Coins) == 0 {
		return nil, errors.New("sim: no coins")
	}
	if err := mining.ValidateAgents(cfg.Agents); err != nil {
		return nil, err
	}
	assignment := cfg.Assignment
	if assignment == nil {
		assignment = make([]int, len(cfg.Agents))
	}
	if len(assignment) != len(cfg.Agents) {
		return nil, fmt.Errorf("sim: %d assignments for %d agents", len(assignment), len(cfg.Agents))
	}
	for i, c := range assignment {
		if c < 0 || c >= len(cfg.Coins) {
			return nil, fmt.Errorf("sim: agent %d assigned to invalid coin %d", i, c)
		}
	}
	epochSecs := cfg.EpochSeconds
	if epochSecs == 0 {
		epochSecs = 3600
	}
	if epochSecs <= 0 {
		return nil, errors.New("sim: non-positive epoch")
	}
	s := &Simulator{
		coins:        cfg.Coins,
		agents:       append([]mining.Agent(nil), cfg.Agents...),
		assignment:   append([]int(nil), assignment...),
		epochSecs:    epochSecs,
		rand:         rng.New(cfg.Seed),
		SwitchSeries: trace.NewSeries("switches"),
	}
	for c := range cfg.Coins {
		name := cfg.Coins[c].Chain.Name()
		s.ShareSeries = append(s.ShareSeries, trace.NewSeries(name+"/share"))
		s.WeightSeries = append(s.WeightSeries, trace.NewSeries(name+"/weight"))
		s.RateSeries = append(s.RateSeries, trace.NewSeries(name+"/rate"))
	}
	return s, nil
}

// OnEpoch registers a hook invoked after every completed epoch (after
// recording). Hooks run in registration order and may inspect state and
// inject manipulation (fees, etc.) for the next epoch.
func (s *Simulator) OnEpoch(h Hook) { s.hooks = append(s.hooks, h) }

// Assignment returns a copy of each agent's current coin.
func (s *Simulator) Assignment() []int { return append([]int(nil), s.assignment...) }

// Epoch returns the number of completed epochs.
func (s *Simulator) Epoch() int { return s.epoch }

// Coins returns the coin markets (live pointers; manipulation hooks use
// these to inject fees).
func (s *Simulator) Coins() []*market.CoinMarket { return s.coins }

// Agents returns the agent fleet (read-only view).
func (s *Simulator) Agents() []mining.Agent { return s.agents }

// CoinPowers returns the total agent power on each coin.
func (s *Simulator) CoinPowers() []float64 {
	powers := make([]float64, len(s.coins))
	for i, a := range s.agents {
		powers[s.assignment[i]] += a.Power
	}
	return powers
}

// Weights returns the current F(c) of every coin.
func (s *Simulator) Weights() []float64 {
	w := make([]float64, len(s.coins))
	for c, cm := range s.coins {
		w[c] = cm.Weight()
	}
	return w
}

// TotalPower returns the fleet's aggregate hashrate.
func (s *Simulator) TotalPower() float64 {
	var t float64
	for _, a := range s.agents {
		t += a.Power
	}
	return t
}

// Run advances the simulation by the given number of epochs.
func (s *Simulator) Run(epochs int) {
	for e := 0; e < epochs; e++ {
		s.step()
	}
}

func (s *Simulator) step() {
	// 1. Rates move.
	for _, cm := range s.coins {
		cm.Rate.Step(s.epochSecs, s.rand)
	}
	// 2. Fresh weights.
	weights := s.Weights()
	// 3. Agents decide in random order; CoinPowers updates as they move so
	//    later agents see earlier switches (sequential better response).
	powers := s.CoinPowers()
	switches := 0
	for _, i := range s.rand.Perm(len(s.agents)) {
		a := s.agents[i]
		cur := s.assignment[i]
		next := a.Policy.Decide(mining.Decision{
			Current:    cur,
			Weights:    weights,
			CoinPowers: powers,
			Power:      a.Power,
		}, s.rand)
		if next != cur && next >= 0 && next < len(s.coins) {
			powers[cur] -= a.Power
			powers[next] += a.Power
			s.assignment[i] = next
			switches++
		}
	}
	// 4. Chains mine under the new hashrate split.
	for c, cm := range s.coins {
		cm.Chain.Advance(s.rand, s.epochSecs, powers[c])
	}
	// 5. Record.
	t := float64(s.epoch)
	total := s.TotalPower()
	for c := range s.coins {
		s.ShareSeries[c].Add(t, powers[c]/total)
		s.WeightSeries[c].Add(t, weights[c])
		s.RateSeries[c].Add(t, s.coins[c].Rate.Rate())
	}
	s.SwitchSeries.Add(t, float64(switches))
	s.epoch++
	for _, h := range s.hooks {
		h(s.epoch, s)
	}
}
