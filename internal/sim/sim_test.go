package sim

import (
	"math"
	"testing"

	"gameofcoins/internal/chain"
	"gameofcoins/internal/market"
	"gameofcoins/internal/mining"
)

func twoCoinSim(t *testing.T, w0, w1 float64, policy mining.Policy) *Simulator {
	t.Helper()
	mkCoin := func(name string, rate float64) *market.CoinMarket {
		ch, err := chain.New(chain.Params{
			Name:               name,
			TargetBlockSeconds: 600,
			RetargetWindow:     144,
			MaxRetargetFactor:  4,
			BlockSubsidy:       10,
			InitialDifficulty:  600,
		})
		if err != nil {
			t.Fatal(err)
		}
		cm, err := market.NewCoinMarket(ch, market.Constant(rate), 0, 600)
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	agents := make([]mining.Agent, 20)
	for i := range agents {
		agents[i] = mining.Agent{Name: "m", Power: 1 + float64(i)*0.1, Policy: policy}
	}
	// Weight = 6 blocks/h · 10 coin · rate ⇒ rate = weight/60.
	s, err := New(Config{
		Coins:        []*market.CoinMarket{mkCoin("a", w0/60), mkCoin("b", w1/60)},
		Agents:       agents,
		EpochSeconds: 3600,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	s := twoCoinSim(t, 100, 100, mining.Loyal{})
	_ = s
	// Bad assignment length.
	ch, _ := chain.New(chain.Params{Name: "x", TargetBlockSeconds: 600, RetargetWindow: 10, MaxRetargetFactor: 4, BlockSubsidy: 1, InitialDifficulty: 1})
	cm, _ := market.NewCoinMarket(ch, market.Constant(1), 0, 600)
	_, err := New(Config{
		Coins:      []*market.CoinMarket{cm},
		Agents:     []mining.Agent{{Name: "a", Power: 1, Policy: mining.Loyal{}}},
		Assignment: []int{0, 0},
	})
	if err == nil {
		t.Fatal("bad assignment length accepted")
	}
	_, err = New(Config{
		Coins:      []*market.CoinMarket{cm},
		Agents:     []mining.Agent{{Name: "a", Power: 1, Policy: mining.Loyal{}}},
		Assignment: []int{3},
	})
	if err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestLoyalAgentsNeverMove(t *testing.T) {
	s := twoCoinSim(t, 100, 10000, mining.Loyal{})
	before := s.Assignment()
	s.Run(50)
	after := s.Assignment()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("loyal agent moved")
		}
	}
	if s.Epoch() != 50 {
		t.Fatalf("epoch = %d", s.Epoch())
	}
}

func TestBetterResponseAgentsSplitByWeight(t *testing.T) {
	// Coin b is 3× heavier; at equilibrium the power split should approach
	// the 1:3 weight ratio (equal RPUs).
	s := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	s.Run(100)
	powers := s.CoinPowers()
	total := powers[0] + powers[1]
	shareB := powers[1] / total
	if math.Abs(shareB-0.75) > 0.06 {
		t.Fatalf("share of heavy coin = %v, want ≈0.75", shareB)
	}
}

func TestSeriesRecorded(t *testing.T) {
	s := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	s.Run(10)
	for c := 0; c < 2; c++ {
		if s.ShareSeries[c].Len() != 10 || s.WeightSeries[c].Len() != 10 || s.RateSeries[c].Len() != 10 {
			t.Fatal("series not recorded per epoch")
		}
	}
	if s.SwitchSeries.Len() != 10 {
		t.Fatal("switch series missing")
	}
	// Shares sum to 1 each epoch.
	for i := 0; i < 10; i++ {
		sum := s.ShareSeries[0].Ys[i] + s.ShareSeries[1].Ys[i]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("epoch %d shares sum to %v", i, sum)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	b := twoCoinSim(t, 100, 300, mining.BetterResponse{})
	a.Run(30)
	b.Run(30)
	pa, pb := a.Assignment(), b.Assignment()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("simulation not reproducible")
		}
	}
}

func TestOnEpochHook(t *testing.T) {
	s := twoCoinSim(t, 100, 100, mining.Loyal{})
	calls := 0
	s.OnEpoch(func(epoch int, sm *Simulator) {
		calls++
		if epoch != calls {
			t.Fatalf("hook epoch %d on call %d", epoch, calls)
		}
	})
	s.Run(7)
	if calls != 7 {
		t.Fatalf("hook called %d times", calls)
	}
}

func TestWeightsAndPowers(t *testing.T) {
	s := twoCoinSim(t, 100, 300, mining.Loyal{})
	w := s.Weights()
	if math.Abs(w[0]-100) > 1e-6 || math.Abs(w[1]-300) > 1e-6 {
		t.Fatalf("weights = %v", w)
	}
	powers := s.CoinPowers()
	if powers[1] != 0 {
		t.Fatalf("initial powers = %v (all agents default to coin 0)", powers)
	}
	if got := s.TotalPower(); math.Abs(got-powers[0]) > 1e-9 {
		t.Fatalf("total power %v != coin-0 power %v", got, powers[0])
	}
}

func TestDifficultyRespondsToMigration(t *testing.T) {
	// When everyone floods coin b, its chain difficulty must rise over time.
	s := twoCoinSim(t, 10, 10000, mining.BetterResponse{})
	d0 := s.Coins()[1].Chain.Difficulty()
	s.Run(400)
	if s.Coins()[1].Chain.Difficulty() <= d0 {
		t.Fatal("difficulty of flooded chain did not rise")
	}
}
