// Package stats provides the small statistics toolkit the experiment harness
// needs: summary statistics, quantiles, histograms, correlation, and simple
// linear regression.
//
// Go's ecosystem has no stdlib numerics beyond math, so this package is the
// substitution for the plotting/analysis stack (matplotlib/pandas) the paper's
// authors would have used; it produces the numbers, and internal/trace renders
// them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual scalar descriptions of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P25    float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// String renders the summary on one line, suitable for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics. q is clamped to [0, 1]. It returns NaN for an empty
// sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of paired samples.
// It returns NaN if the lengths differ, fewer than two points are given, or
// either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of y = a*x + b.
// It returns NaNs if the inputs are unusable.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: non-positive bin count")
	}
	if hi <= lo {
		panic("stats: empty histogram range")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / width)
			if i >= bins { // guard against float rounding at the upper edge
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// Total returns the number of samples inside the histogram range.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders the histogram as ASCII bars, one bin per line.
func (h *Histogram) String() string {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%10.4g,%10.4g) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// EMA computes an exponential moving average of xs with smoothing alpha in
// (0, 1]. The result has the same length as xs.
func EMA(xs []float64, alpha float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs))
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Diff returns the first differences of xs (len(xs)-1 elements).
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}
