package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single-element summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize([]float64{1, 2, 3}).String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2") {
		t.Fatalf("summary string %q missing fields", out)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
		{-0.5, 10}, {1.5, 40}, // clamped
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := Correlation(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if !math.IsNaN(Correlation(xs, []float64{5, 5, 5, 5})) {
		t.Error("zero-variance correlation should be NaN")
	}
	if !math.IsNaN(Correlation(xs, []float64{1})) {
		t.Error("mismatched lengths should be NaN")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	s, i := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) || !math.IsNaN(i) {
		t.Fatal("degenerate x should give NaN fit")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.5, 1.5, 2.5, 3, 10}, 0, 3, 3)
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 { // 3 and 10 are >= hi
		t.Errorf("Over = %d", h.Over)
	}
	want := []int{2, 1, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
	if out := h.String(); !strings.Contains(out, "#") {
		t.Errorf("histogram render missing bars:\n%s", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(nil, 0, 1, 0) },
		"empty range": func() { NewHistogram(nil, 1, 1, 3) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestHistogramUpperEdgeRounding(t *testing.T) {
	// A value just below Hi must land in the last bin, never out of range.
	h := NewHistogram([]float64{2.9999999999999996}, 0, 3, 3)
	if h.Counts[2] != 1 {
		t.Fatalf("edge value misplaced: %+v", h)
	}
}

func TestEMA(t *testing.T) {
	out := EMA([]float64{1, 2, 3}, 0.5)
	want := []float64{1, 1.5, 2.25}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("EMA = %v, want %v", out, want)
		}
	}
	if EMA(nil, 0.5) != nil {
		t.Fatal("EMA of empty should be nil")
	}
}

func TestDiff(t *testing.T) {
	out := Diff([]float64{1, 4, 9})
	if len(out) != 2 || out[0] != 3 || out[1] != 5 {
		t.Fatalf("Diff = %v", out)
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of single element should be nil")
	}
}

func TestMeanPropertyBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return Mean(clean) == 0
		}
		m := Mean(clean)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range clean {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
