package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gameofcoins/internal/core"
)

// DefaultMaxJobRecords caps how many job records a File store keeps across
// compactions. It matches the engine manager's default job retention: records
// beyond what the manager would rehydrate are dead weight on disk. Oldest
// terminal records are dropped first; interrupted ("submitted") records are
// always kept — they are the restart-recovery signal.
const DefaultMaxJobRecords = 4096

// DefaultMaxRangeDocs caps how many per-task result documents a store keeps
// per job (the -compact-ranges knob). The retained low-index prefix is what
// restart prefill and download resume consume; jobs with more tasks than
// the cap lose per-task servability past it after a restart, but never the
// aggregate result.
const DefaultMaxRangeDocs = 4096

// compactMinOps is the default floor below which the log is never compacted,
// so small servers don't churn the file on every write.
const compactMinOps = 1024

// logName is the operation log inside the store directory; lockName is the
// advisory lock guarding the directory against a second process.
const (
	logName  = "log.jsonl"
	lockName = "lock"
)

// File is the file-backed Store: an append-only JSONL operation log,
// replayed on open and compacted in place (atomic rename) when the log has
// accumulated several times more operations than live records. Appends are
// flushed per operation but not fsynced — a power cut may lose the final
// lines, which rehydration tolerates (a lost terminal record resubmits the
// job; determinism recomputes the identical result). All methods are safe
// for concurrent use.
type File struct {
	// MaxJobs overrides DefaultMaxJobRecords when positive. Set before use.
	MaxJobs int
	// MaxRangeDocs caps the per-task result documents retained per job:
	// positive overrides DefaultMaxRangeDocs, negative disables the cap.
	// Set before use.
	MaxRangeDocs int
	// CompactMinOps overrides the compaction floor when positive (tests).
	CompactMinOps int

	mu     sync.Mutex
	dir    string
	f      *os.File // guarded by mu
	lock   *os.File // guarded by mu
	snap   Snapshot // guarded by mu
	ops    int      // guarded by mu; operations appended since open/compaction
	closed bool     // guarded by mu
}

// OpenFile opens (creating if needed) the file store rooted at dir and
// replays its log. The directory is guarded by an advisory lock: a second
// concurrent opener — another gocserve on the same -data, or a restart
// racing a not-yet-exited old process — fails fast here instead of the two
// processes silently compacting each other's appends away.
func OpenFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	if err := lockExclusive(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is already in use by another process: %w", dir, err)
	}
	s := &File{dir: dir, lock: lock, snap: emptySnapshot()}
	good, err := s.replay()
	if err != nil {
		lock.Close()
		return nil, err
	}
	// Cut a torn tail off before appending: writing onto a partial line
	// would merge the next op into it — silently losing that op and turning
	// the garbage into fatal interior corruption at the next open.
	if info, err := os.Stat(s.logPath()); err == nil && info.Size() > good {
		if err := os.Truncate(s.logPath(), good); err != nil {
			lock.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(s.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s.f = f
	return s, nil
}

func (s *File) logPath() string { return filepath.Join(s.dir, logName) }

// op is one log line. Exactly one payload group is set, selected by Op:
// "game" (ID+Game), "job" (Job), "range" (JobID+Lo+Results — one span of a
// running job's per-task results), "handle" (ID+JobID), "release" (ID),
// "pin" (JobID), "seq" (Seq — preserves the handle mint counter across
// compactions, which drop the released handle ops it derives from).
type op struct {
	Op      string            `json:"op"`
	ID      string            `json:"id,omitempty"`
	Game    json.RawMessage   `json:"game,omitempty"`
	Job     *JobRecord        `json:"job,omitempty"`
	JobID   string            `json:"job_id,omitempty"`
	Lo      int               `json:"lo,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
	Seq     uint64            `json:"seq,omitempty"`
}

// replay rebuilds the snapshot from the log and returns the byte offset of
// the end of the last intact line. An unterminated final line — the only
// shape a crash mid-append can leave, since the newline is each op's last
// byte — is tolerated (OpenFile truncates it away); corruption in any
// *terminated* line is an error, because silently skipping interior history
// could resurrect released handles or lose results.
func (s *File) replay() (int64, error) {
	data, err := os.ReadFile(s.logPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: read log: %w", err)
	}
	var good int64
	lineno := 0
	for start := 0; start < len(data); {
		nl := bytes.IndexByte(data[start:], '\n')
		if nl < 0 {
			break // torn tail from a crash mid-append
		}
		line := data[start : start+nl]
		lineno++
		var o op
		if err := json.Unmarshal(line, &o); err != nil {
			return 0, fmt.Errorf("store: corrupt log line %d: %w", lineno, err)
		}
		if err := s.applyLocked(o); err != nil {
			return 0, fmt.Errorf("store: corrupt log line %d: %w", lineno, err)
		}
		start += nl + 1
		good = int64(start)
	}
	return good, nil
}

// applyLocked folds one op into the live snapshot. Callers hold s.mu —
// except replay, which runs inside OpenFile before the store is shared.
func (s *File) applyLocked(o op) error {
	switch o.Op {
	case "game":
		var g core.Game
		if err := json.Unmarshal(o.Game, &g); err != nil {
			return fmt.Errorf("decode game %s: %w", o.ID, err)
		}
		s.snap.Games[o.ID] = &g
	case "job":
		if o.Job == nil || o.Job.ID == "" {
			return fmt.Errorf("job op without a record")
		}
		s.snap.Jobs[o.Job.ID] = *o.Job
		if o.Job.State == JobFailed || o.Job.State == JobCanceled {
			// No result to serve: the per-task spans are dead weight.
			delete(s.snap.Ranges, o.Job.ID)
		}
	case "range":
		s.snap.addRange(o.JobID, o.Lo, o.Results, maxRangeDocs(s.MaxRangeDocs))
	case "handle":
		s.snap.Handles[o.ID] = o.JobID
		if n := handleSeq(o.ID); n > s.snap.NextHandle {
			s.snap.NextHandle = n
		}
	case "release":
		delete(s.snap.Handles, o.ID)
	case "pin":
		s.snap.Pins[o.JobID] = struct{}{}
	case "seq":
		if o.Seq > s.snap.NextHandle {
			s.snap.NextHandle = o.Seq
		}
	default:
		return fmt.Errorf("unknown op %q", o.Op)
	}
	return nil
}

// append applies o to the live snapshot and writes it to the log, then
// compacts if the log has outgrown the live state.
func (s *File) append(o op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	if err := s.applyLocked(o); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("store: encode op: %w", err)
	}
	if n, err := s.f.Write(append(line, '\n')); err != nil {
		// A short write (ENOSPC, I/O error) left partial bytes mid-log; cut
		// the file back to the last full line so later appends don't merge
		// into garbage that bricks the next open. The in-memory snapshot is
		// ahead of the log until the next successful compaction rewrites it.
		if n > 0 {
			if info, serr := s.f.Stat(); serr == nil {
				_ = os.Truncate(s.logPath(), info.Size()-int64(n))
			}
		}
		return fmt.Errorf("store: append: %w", err)
	}
	s.ops++
	return s.maybeCompactLocked()
}

// maybeCompactLocked rewrites the log as a snapshot once the appended
// operations outnumber the live records severalfold (with a floor, so small
// stores never churn). Callers must hold s.mu.
func (s *File) maybeCompactLocked() error {
	floor := s.CompactMinOps
	if floor <= 0 {
		floor = compactMinOps
	}
	// Overshooting the job-record cap also forces a compaction (which is
	// what evicts records); the quarter-cap hysteresis keeps a store sitting
	// at the cap from recompacting on every insert.
	limit := s.MaxJobs
	if limit <= 0 {
		limit = DefaultMaxJobRecords
	}
	overCap := len(s.snap.Jobs) > limit+limit/4
	live := len(s.snap.Games) + len(s.snap.Jobs) + len(s.snap.Handles) + len(s.snap.Pins)
	for _, recs := range s.snap.Ranges {
		live += len(recs)
	}
	if !overCap && (s.ops < floor || s.ops < 4*live) {
		return nil
	}
	return s.compactLocked()
}

// compactLocked writes the live snapshot to a fresh log and atomically
// renames it over the old one. It also enforces the job-record cap: oldest
// terminal records past MaxJobs are dropped (submitted records always
// survive — they are what restart recovery reruns).
func (s *File) compactLocked() error {
	s.dropExcessJobsLocked()
	tmpPath := s.logPath() + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := func(o op) bool {
		line, err := json.Marshal(o)
		if err == nil {
			_, err = tmp.Write(append(line, '\n'))
		}
		if err != nil {
			tmp.Close()
			//goclint:allow errdrop -- best-effort tmp cleanup; the write error is what callers see
			os.Remove(tmpPath)
		}
		return err == nil
	}
	for _, id := range sortedKeys(s.snap.Games) {
		raw, err := json.Marshal(s.snap.Games[id])
		if err != nil {
			tmp.Close()
			//goclint:allow errdrop -- best-effort tmp cleanup; the marshal error below is the failure
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact game %s: %w", id, err)
		}
		if !w(op{Op: "game", ID: id, Game: raw}) {
			return fmt.Errorf("store: compact: write failed")
		}
	}
	for _, id := range sortedKeys(s.snap.Jobs) {
		rec := s.snap.Jobs[id]
		if !w(op{Op: "job", Job: &rec}) {
			return fmt.Errorf("store: compact: write failed")
		}
	}
	// Range spans land after the job records so replay's addRange sees the
	// owning submitted record. The live map is already folded (addRange
	// merges adjacent spans on apply), so each job emits its spans as-is.
	for _, id := range sortedKeys(s.snap.Ranges) {
		for _, rr := range s.snap.Ranges[id] {
			if !w(op{Op: "range", JobID: id, Lo: rr.Lo, Results: rr.Results}) {
				return fmt.Errorf("store: compact: write failed")
			}
		}
	}
	for _, h := range sortedKeys(s.snap.Handles) {
		if !w(op{Op: "handle", ID: h, JobID: s.snap.Handles[h]}) {
			return fmt.Errorf("store: compact: write failed")
		}
	}
	for _, id := range sortedKeys(s.snap.Pins) {
		if !w(op{Op: "pin", JobID: id}) {
			return fmt.Errorf("store: compact: write failed")
		}
	}
	if s.snap.NextHandle > 0 {
		if !w(op{Op: "seq", Seq: s.snap.NextHandle}) {
			return fmt.Errorf("store: compact: write failed")
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		//goclint:allow errdrop -- best-effort tmp cleanup; the sync error below is the failure
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		//goclint:allow errdrop -- best-effort tmp cleanup; the close error below is the failure
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, s.logPath()); err != nil {
		//goclint:allow errdrop -- best-effort tmp cleanup; the rename error below is the failure
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	old := s.f
	f, err := os.OpenFile(s.logPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rename just unlinked the inode old points at: appending there
		// would "succeed" into an orphan file and vanish on exit. Fail the
		// store outright — the on-disk log is the consistent compacted
		// snapshot, and every later mutation errors instead of silently
		// disappearing.
		old.Close()
		s.closed = true
		return fmt.Errorf("store: reopen log after compaction: %w", err)
	}
	old.Close()
	s.f = f
	s.ops = 0
	return nil
}

// dropExcessJobsLocked enforces the job-record cap (and the handle/pin GC
// that rides along) on the live snapshot before it is written out.
func (s *File) dropExcessJobsLocked() {
	limit := s.MaxJobs
	if limit <= 0 {
		limit = DefaultMaxJobRecords
	}
	s.snap.dropExcessJobs(limit)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Load implements Store.
func (s *File) Load() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, os.ErrClosed
	}
	return s.snap.clone(), nil
}

// PutGame implements Store.
func (s *File) PutGame(id string, g *core.Game) error {
	raw, err := json.Marshal(g)
	if err != nil {
		return fmt.Errorf("store: encode game %s: %w", id, err)
	}
	return s.append(op{Op: "game", ID: id, Game: raw})
}

// PutJob implements Store.
func (s *File) PutJob(rec JobRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("store: job record without an ID")
	}
	return s.append(op{Op: "job", Job: &rec})
}

// PutJobRange implements Store.
func (s *File) PutJobRange(jobID string, lo int, results []json.RawMessage) error {
	if jobID == "" {
		return fmt.Errorf("store: range without a job ID")
	}
	if len(results) == 0 {
		return nil // nothing to record; don't burn a log line
	}
	return s.append(op{Op: "range", JobID: jobID, Lo: lo, Results: results})
}

// PutHandle implements Store.
func (s *File) PutHandle(handle, jobID string) error {
	return s.append(op{Op: "handle", ID: handle, JobID: jobID})
}

// DeleteHandle implements Store.
func (s *File) DeleteHandle(handle string) error {
	return s.append(op{Op: "release", ID: handle})
}

// PutPin implements Store.
func (s *File) PutPin(jobID string) error {
	return s.append(op{Op: "pin", JobID: jobID})
}

// Close flushes and closes the log and releases the directory lock.
// Further mutations fail with ErrClosed.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer s.lock.Close() // releases the advisory lock
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return s.f.Close()
}
