//go:build !unix

package store

// lockExclusive is a no-op on platforms without flock: the store still
// works, but concurrent opens of one data directory are not detected.
func lockExclusive(f interface{ Fd() uintptr }) error { return nil }
