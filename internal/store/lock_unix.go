//go:build unix

package store

import (
	"errors"
	"syscall"
)

// lockExclusive takes a non-blocking exclusive advisory lock on f, held
// until f is closed. flock is per open-file description, so a second
// OpenFile on the same directory conflicts even within one process.
func lockExclusive(f interface{ Fd() uintptr }) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return errors.New("flock held elsewhere")
	}
	return err
}
