package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func docs(vals ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(itoa(v))
	}
	return out
}

// TestMemRangeFold: adjacent spans fold into one record, overlaps resolve
// first-writer-wins, and only submitted jobs accumulate ranges.
func TestMemRangeFold(t *testing.T) {
	s := NewMem()
	if err := s.PutJob(JobRecord{ID: "job-1", Tasks: 10, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 0, docs(10, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 2, docs(12, 13, 14)); err != nil {
		t.Fatal(err)
	}
	// Overlap: tasks 3 and 4 are already recorded; only task 5's document
	// (here deliberately different bytes for 3 and 4) may land.
	if err := s.PutJobRange("job-1", 3, docs(99, 99, 15)); err != nil {
		t.Fatal(err)
	}
	// Fully covered span: dropped outright.
	if err := s.PutJobRange("job-1", 1, docs(99, 99)); err != nil {
		t.Fatal(err)
	}
	// An island beyond the contiguous prefix stays its own record.
	if err := s.PutJobRange("job-1", 8, docs(18)); err != nil {
		t.Fatal(err)
	}
	// Ranges for unknown jobs are dropped, not stored.
	if err := s.PutJobRange("job-9", 0, docs(1)); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []RangeRecord{
		{Lo: 0, Results: docs(10, 11, 12, 13, 14, 15)},
		{Lo: 8, Results: docs(18)},
	}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("ranges = %+v, want %+v", snap.Ranges["job-1"], want)
	}
	if _, ok := snap.Ranges["job-9"]; ok {
		t.Fatal("range for an unknown job was stored")
	}
	// A done record keeps its spans — they are what makes ?range fetches
	// and resumed downloads work after a restart.
	if err := s.PutJob(JobRecord{ID: "job-1", Tasks: 10, State: JobDone, Result: json.RawMessage(`1`)}); err != nil {
		t.Fatal(err)
	}
	snap, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("done job's ranges = %+v, want %+v", snap.Ranges["job-1"], want)
	}
	// A failed record clears them: there is no result they could serve.
	if err := s.PutJob(JobRecord{ID: "job-1", Tasks: 10, State: JobFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	snap, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Ranges) != 0 {
		t.Fatalf("failed job kept its ranges: %+v", snap.Ranges)
	}
}

// TestRangeCompactionCap: MaxRangeDocs bounds the per-task documents kept
// per job, trimming from the highest indices so the resumable low prefix
// survives; negative disables the cap.
func TestRangeCompactionCap(t *testing.T) {
	s := NewMem()
	s.MaxRangeDocs = 4
	if err := s.PutJob(JobRecord{ID: "job-1", Tasks: 10, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 0, docs(10, 11, 12)); err != nil {
		t.Fatal(err)
	}
	// An island entirely above the cap is trimmed away...
	if err := s.PutJobRange("job-1", 8, docs(18, 19)); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []RangeRecord{
		{Lo: 0, Results: docs(10, 11, 12)},
		{Lo: 8, Results: docs(18)},
	}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("ranges = %+v, want %+v", snap.Ranges["job-1"], want)
	}
	// Monotonic watermark-order growth (what the server's watcher emits)
	// saturates at the cap: the low prefix survives, later spans trim away.
	mono := NewMem()
	mono.MaxRangeDocs = 4
	if err := mono.PutJob(JobRecord{ID: "job-1", Tasks: 10, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := mono.PutJobRange("job-1", 0, docs(10, 11, 12)); err != nil {
		t.Fatal(err)
	}
	if err := mono.PutJobRange("job-1", 3, docs(13, 14, 15)); err != nil {
		t.Fatal(err)
	}
	if err := mono.PutJobRange("job-1", 6, docs(16, 17)); err != nil {
		t.Fatal(err)
	}
	snap, err = mono.Load()
	if err != nil {
		t.Fatal(err)
	}
	want = []RangeRecord{{Lo: 0, Results: docs(10, 11, 12, 13)}}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("capped monotonic growth = %+v, want %+v", snap.Ranges["job-1"], want)
	}

	unbounded := NewMem()
	unbounded.MaxRangeDocs = -1
	if err := unbounded.PutJob(JobRecord{ID: "job-1", Tasks: 10_000, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	big := make([]json.RawMessage, DefaultMaxRangeDocs+8)
	for i := range big {
		big[i] = json.RawMessage(`1`)
	}
	if err := unbounded.PutJobRange("job-1", 0, big); err != nil {
		t.Fatal(err)
	}
	snap, err = unbounded.Load()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(snap.Ranges["job-1"][0].Results); n != len(big) {
		t.Fatalf("uncapped store trimmed to %d docs", n)
	}
}

// TestFileRangeRoundTrip: range records survive close/reopen, fold across
// the replay, and vanish when the job's terminal record lands.
func TestFileRangeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(JobRecord{ID: "job-1", Kind: "toy_sum", Tasks: 6, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(JobRecord{ID: "job-2", Kind: "toy_sum", Tasks: 4, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 0, docs(10, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 2, docs(12)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-2", 0, docs(20)); err != nil {
		t.Fatal(err)
	}
	// job-2 finishes: its spans ride along with the done record, so range
	// fetches keep working after the reopen.
	if err := s.PutJob(JobRecord{ID: "job-2", Kind: "toy_sum", Tasks: 4, State: JobDone, Result: json.RawMessage(`41`)}); err != nil {
		t.Fatal(err)
	}
	// job-3 fails: its spans are dead weight and must not survive.
	if err := s.PutJob(JobRecord{ID: "job-3", Kind: "toy_sum", Tasks: 4, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-3", 0, docs(30)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(JobRecord{ID: "job-3", Kind: "toy_sum", Tasks: 4, State: JobFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []RangeRecord{{Lo: 0, Results: docs(10, 11, 12)}}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("job-1 ranges = %+v, want %+v", snap.Ranges["job-1"], want)
	}
	if !reflect.DeepEqual(snap.Ranges["job-2"], []RangeRecord{{Lo: 0, Results: docs(20)}}) {
		t.Fatalf("done job's ranges did not survive the restart: %+v", snap.Ranges["job-2"])
	}
	if _, ok := snap.Ranges["job-3"]; ok {
		t.Fatal("failed job's ranges survived the restart")
	}
}

// TestFileRangeCompaction: compaction folds a job's appended spans into its
// live records and drops spans of terminal jobs; the compacted log replays
// to the same state.
func TestFileRangeCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactMinOps = 8
	if err := s.PutJob(JobRecord{ID: "job-1", Kind: "toy_sum", Tasks: 64, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if err := s.PutJobRange("job-1", i, docs(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.ops > 48 {
		t.Fatalf("log never compacted: %d pending ops", s.ops)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	recs := snap.Ranges["job-1"]
	if len(recs) != 1 || recs[0].Lo != 0 || len(recs[0].Results) != 48 {
		t.Fatalf("ranges after compaction = %+v", recs)
	}
	for i, d := range recs[0].Results {
		if string(d) != itoa(100+i) {
			t.Fatalf("task %d doc = %s, want %d", i, d, 100+i)
		}
	}
}

// TestFileRangeTornTail: a crash mid-append of a range record leaves a
// partial final line; open succeeds, every span before it is intact, and the
// torn record is simply gone (the next life recomputes those tasks).
func TestFileRangeTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(JobRecord{ID: "job-1", Kind: "toy_sum", Tasks: 8, State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRange("job-1", 0, docs(10, 11, 12)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"range","job_id":"job-1","lo":3,"results":[13,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("torn range tail rejected: %v", err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []RangeRecord{{Lo: 0, Results: docs(10, 11, 12)}}
	if !reflect.DeepEqual(snap.Ranges["job-1"], want) {
		t.Fatalf("ranges = %+v, want %+v", snap.Ranges["job-1"], want)
	}
}

// TestDropExcessJobsGCsRanges: evicting a job record (or finding its state
// terminal) garbage-collects its range spans along with handles and pins.
func TestDropExcessJobsGCsRanges(t *testing.T) {
	snap := emptySnapshot()
	snap.Jobs["job-1"] = JobRecord{ID: "job-1", State: JobSubmitted}
	snap.Ranges["job-1"] = []RangeRecord{{Lo: 0, Results: docs(1)}}
	snap.Ranges["job-gone"] = []RangeRecord{{Lo: 0, Results: docs(2)}}
	snap.dropExcessJobs(10)
	if _, ok := snap.Ranges["job-1"]; !ok {
		t.Fatal("live submitted job's ranges dropped")
	}
	if _, ok := snap.Ranges["job-gone"]; ok {
		t.Fatal("evicted job's ranges survived GC")
	}
}
