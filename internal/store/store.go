// Package store persists gocserve's durable state: the game registry, the
// job table with its deterministic results, and the v2 handle/refcount
// bookkeeping. Everything the server keeps is a deterministic function of
// (canonical spec JSON, seed), so a persisted job record is a reusable
// artifact — after a restart a finished job serves its cached result
// byte-identically, and a job interrupted mid-run can simply be resubmitted
// under its original spec and seed.
//
// The Store interface is write-through: the server applies every mutation
// to its in-memory tables first and mirrors it into the store, then reads
// the whole state back once at startup (Load). Two implementations:
//
//   - Mem: process-local maps; nothing survives exit. The default, and
//     byte-identical to the pre-persistence server.
//   - File: an append-only JSONL operation log in a directory, replayed on
//     open and periodically compacted. Stdlib only.
package store

import (
	"encoding/json"
	"sort"
	"sync"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
)

// Job record states. Submitted marks a job that was running (or about to
// run) when the record was last written — after a crash or shutdown it is
// the signal to resubmit. The other three are terminal.
const (
	JobSubmitted = "submitted"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCanceled  = "canceled"
)

// JobRecord is the durable form of one job: everything needed to re-serve
// its result (ID, kind, cached-result document) or to recompute it from
// scratch (canonical spec document + seed — determinism makes the rerun
// byte-identical).
type JobRecord struct {
	// ID is the manager job ID ("job-N"); rehydration preserves it so
	// pre-restart handles and result URLs stay valid.
	ID string `json:"id"`
	// Key is the engine cache key for (Spec, Seed) at Version.
	Key string `json:"key"`
	// Kind is the registered bare spec kind.
	Kind string `json:"kind"`
	// Version is the registered spec version the job resolved to. Records
	// written before the catalog redesign carry no version (0), which
	// rehydration maps to version 1 — the pre-versioning wire format — so
	// old data directories revive without migration.
	Version int `json:"version,omitempty"`
	// Seed roots the job's deterministic randomness.
	Seed uint64 `json:"seed"`
	// Tasks is the job's task fan-out (progress totals after rehydration).
	Tasks int `json:"tasks"`
	// Spec is the canonical, game-resolved spec document.
	Spec json.RawMessage `json:"spec,omitempty"`
	// State is one of the Job* constants above.
	State string `json:"state"`
	// Result is the marshalled result (State == JobDone only).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the terminal error (failed/canceled).
	Error string `json:"error,omitempty"`
}

// RangeRecord is one persisted span of a running job's result ledger: the
// TaskCoder-encoded documents of tasks [Lo, Lo+len(Results)). The server
// appends one per watermark advance; the store folds adjacent spans on
// apply (first-writer-wins, exactly like the engine's publication), so a
// job's folded records always cover the contiguous prefix [0, watermark).
type RangeRecord struct {
	Lo      int               `json:"lo"`
	Results []json.RawMessage `json:"results"`
}

// End returns the exclusive upper bound of the record's span.
func (r RangeRecord) End() int { return r.Lo + len(r.Results) }

// Snapshot is the full durable state, as Load returns it.
type Snapshot struct {
	// Games maps content-addressed game IDs to registered games.
	Games map[string]*core.Game
	// Jobs maps job IDs to their latest records.
	Jobs map[string]JobRecord
	// Ranges maps job IDs to their persisted per-task result spans. For a
	// *submitted* (interrupted) job they are the completed prefix a restart
	// prefills so only the missing suffix recomputes; for a *done* job they
	// keep ?range fetches and resumed result streams servable across a
	// restart (bounded by the MaxRangeDocs compaction cap). Failed and
	// canceled records clear their ranges — there is no result to serve.
	Ranges map[string][]RangeRecord
	// Handles maps live v2 handle IDs to job IDs.
	Handles map[string]string
	// Pins is the set of job IDs a v1 client submitted or attached to.
	Pins map[string]struct{}
	// NextHandle is the highest handle sequence number ever minted — not
	// just the highest live one, so a restart never re-mints a released
	// handle ID (a stale client could otherwise control a stranger's job).
	NextHandle uint64
}

// addRange folds one range record into the snapshot, then applies the
// maxDocs compaction cap (see trimRanges). Spans are appended in watermark
// order, so the common case extends the previous record in place; an
// overlap keeps the bytes already recorded (first-writer-wins) and only
// the genuinely new suffix lands. Records for jobs that are not live
// "submitted" or "done" ones are dropped — there is no result the spans
// could serve (or the job was evicted), so they are dead weight.
func (s *Snapshot) addRange(jobID string, lo int, results []json.RawMessage, maxDocs int) {
	if rec, ok := s.Jobs[jobID]; !ok || (rec.State != JobSubmitted && rec.State != JobDone) {
		return
	}
	if lo < 0 || len(results) == 0 {
		return
	}
	defer s.trimRanges(jobID, maxDocs)
	recs := s.Ranges[jobID]
	if n := len(recs); n > 0 {
		last := &recs[n-1]
		if end := last.End(); lo <= end {
			if lo+len(results) <= end {
				return // fully covered: first writer already won
			}
			last.Results = append(last.Results, results[end-lo:]...)
			s.Ranges[jobID] = recs
			return
		}
	}
	if s.Ranges == nil {
		s.Ranges = map[string][]RangeRecord{}
	}
	s.Ranges[jobID] = append(recs, RangeRecord{Lo: lo, Results: results})
}

// trimRanges enforces the per-job compaction cap: at most max per-task
// documents survive, trimmed from the highest task indices — the low
// contiguous prefix is what restart prefill and download resume consume,
// so it is the part worth keeping. max <= 0 means unbounded.
func (s *Snapshot) trimRanges(jobID string, max int) {
	if max <= 0 {
		return
	}
	recs := s.Ranges[jobID]
	total := 0
	for _, r := range recs {
		total += len(r.Results)
	}
	for total > max && len(recs) > 0 {
		last := &recs[len(recs)-1]
		if drop := total - max; drop >= len(last.Results) {
			total -= len(last.Results)
			recs = recs[:len(recs)-1]
		} else {
			last.Results = last.Results[:len(last.Results)-drop]
			total -= drop
		}
	}
	if len(recs) == 0 {
		delete(s.Ranges, jobID)
	} else {
		s.Ranges[jobID] = recs
	}
}

// Store persists the server's durable state. Implementations must be safe
// for concurrent use; the server calls the Put/Delete methods while holding
// its own mutex and never reacquires it from store callbacks, so a store
// may lock freely but must not call back into the server.
type Store interface {
	// Load returns the current state. The server calls it once at startup;
	// the returned maps are the caller's to keep.
	Load() (Snapshot, error)
	// PutGame upserts a registered game.
	PutGame(id string, g *core.Game) error
	// PutJob upserts a job record keyed by rec.ID. Writing a failed or
	// canceled state clears the job's persisted ranges — there is no result
	// they could serve. Done records keep theirs (bounded by the
	// implementation's MaxRangeDocs compaction cap), so range fetches and
	// resumed result streams survive a restart.
	PutJob(rec JobRecord) error
	// PutJobRange appends one span of a job's per-task results: the encoded
	// documents of tasks [lo, lo+len(results)). Only jobs in the submitted
	// or done state accumulate ranges; overlapping spans resolve
	// first-writer-wins, and spans past the compaction cap are trimmed from
	// the highest indices.
	PutJobRange(jobID string, lo int, results []json.RawMessage) error
	// PutHandle records a live handle claiming a job.
	PutHandle(handle, jobID string) error
	// DeleteHandle removes a released (or evicted) handle.
	DeleteHandle(handle string) error
	// PutPin marks a job as v1-attached.
	PutPin(jobID string) error
	// Close releases the store. Further mutations fail.
	Close() error
}

// handleSeq is engine.ParseSeq for "h-N" handle IDs; foreign shapes report
// 0 (they never advance the mint counter).
func handleSeq(handle string) uint64 {
	n, _ := engine.ParseSeq(handle, "h-")
	return n
}

// dropExcessJobs evicts the oldest terminal job records past limit —
// mirroring the engine manager's retention policy — and garbage-collects
// handles and pins whose job record is gone. Submitted records always
// survive: they are the restart-recovery signal. (The server writes a job
// record before any handle or pin referencing it, so a missing record means
// the job itself was evicted, not that the ops raced.)
func (s *Snapshot) dropExcessJobs(limit int) {
	if len(s.Jobs) > limit {
		terminal := make([]string, 0, len(s.Jobs))
		for id, rec := range s.Jobs {
			if rec.State != JobSubmitted {
				terminal = append(terminal, id)
			}
		}
		sort.Slice(terminal, func(i, k int) bool { return jobSeq(terminal[i]) < jobSeq(terminal[k]) })
		for _, id := range terminal {
			if len(s.Jobs) <= limit {
				break
			}
			delete(s.Jobs, id)
		}
	}
	for h, id := range s.Handles {
		if _, ok := s.Jobs[id]; !ok {
			delete(s.Handles, h)
		}
	}
	for id := range s.Ranges {
		if rec, ok := s.Jobs[id]; !ok || (rec.State != JobSubmitted && rec.State != JobDone) {
			delete(s.Ranges, id)
		}
	}
	for id := range s.Pins {
		if _, ok := s.Jobs[id]; !ok {
			delete(s.Pins, id)
		}
	}
}

// jobSeq orders "job-N" IDs by age; foreign shapes sort first (oldest).
func jobSeq(id string) uint64 {
	n, _ := engine.ParseSeq(id, "job-")
	return n
}

// Mem is the in-memory Store: a mirror of the server's own tables that
// vanishes with the process. It exists so the server has exactly one code
// path — persistence is always on, durability is the store's property. Like
// File it caps retained job records (the engine manager evicts terminal
// jobs past its retention, and a mirror that never forgot them would leak
// in the default no-persistence server).
type Mem struct {
	// MaxJobs overrides DefaultMaxJobRecords when positive. Set before use.
	MaxJobs int
	// MaxRangeDocs caps the per-task result documents retained per job:
	// positive overrides DefaultMaxRangeDocs, negative disables the cap.
	// Set before use.
	MaxRangeDocs int

	mu   sync.Mutex
	snap Snapshot
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{snap: emptySnapshot()}
}

func emptySnapshot() Snapshot {
	return Snapshot{
		Games:   map[string]*core.Game{},
		Jobs:    map[string]JobRecord{},
		Ranges:  map[string][]RangeRecord{},
		Handles: map[string]string{},
		Pins:    map[string]struct{}{},
	}
}

// clone copies the snapshot so Load callers can keep (and mutate) the maps
// without aliasing the store's live state. Games are shared pointers —
// immutable by construction.
func (s Snapshot) clone() Snapshot {
	out := emptySnapshot()
	for id, g := range s.Games {
		out.Games[id] = g
	}
	for id, rec := range s.Jobs {
		out.Jobs[id] = rec
	}
	for id, recs := range s.Ranges {
		// Fresh record slice per job; the document bytes are shared
		// read-only, like Result in the job records.
		cp := make([]RangeRecord, len(recs))
		copy(cp, recs)
		out.Ranges[id] = cp
	}
	for h, id := range s.Handles {
		out.Handles[h] = id
	}
	for id := range s.Pins {
		out.Pins[id] = struct{}{}
	}
	out.NextHandle = s.NextHandle
	return out
}

// Load implements Store.
func (m *Mem) Load() (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap.clone(), nil
}

// PutGame implements Store.
func (m *Mem) PutGame(id string, g *core.Game) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Games[id] = g
	return nil
}

// PutJob implements Store.
func (m *Mem) PutJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Jobs[rec.ID] = rec
	if rec.State == JobFailed || rec.State == JobCanceled {
		delete(m.snap.Ranges, rec.ID)
	}
	limit := m.MaxJobs
	if limit <= 0 {
		limit = DefaultMaxJobRecords
	}
	// Quarter-cap hysteresis, like File's compaction trigger, so a table
	// sitting at the cap doesn't rescan on every insert.
	if len(m.snap.Jobs) > limit+limit/4 {
		m.snap.dropExcessJobs(limit)
	}
	return nil
}

// PutJobRange implements Store.
func (m *Mem) PutJobRange(jobID string, lo int, results []json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.addRange(jobID, lo, results, maxRangeDocs(m.MaxRangeDocs))
	return nil
}

// maxRangeDocs resolves a MaxRangeDocs field: zero means the default cap,
// negative means unbounded (trimRanges treats <= 0 as no cap).
func maxRangeDocs(v int) int {
	if v == 0 {
		return DefaultMaxRangeDocs
	}
	return v
}

// PutHandle implements Store.
func (m *Mem) PutHandle(handle, jobID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Handles[handle] = jobID
	if n := handleSeq(handle); n > m.snap.NextHandle {
		m.snap.NextHandle = n
	}
	return nil
}

// DeleteHandle implements Store.
func (m *Mem) DeleteHandle(handle string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.snap.Handles, handle)
	return nil
}

// PutPin implements Store.
func (m *Mem) PutPin(jobID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Pins[jobID] = struct{}{}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
