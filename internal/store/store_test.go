package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gameofcoins/internal/core"
)

func testGame(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}},
		[]core.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 9},
	)
}

func populate(t *testing.T, s Store) {
	t.Helper()
	if err := s.PutGame("g-1", testGame(t)); err != nil {
		t.Fatal(err)
	}
	recs := []JobRecord{
		{ID: "job-1", Key: "k1", Kind: "learn_sweep", Seed: 7, Tasks: 4,
			Spec: json.RawMessage(`{"runs":4}`), State: JobDone, Result: json.RawMessage(`{"total_runs":4}`)},
		// Version 2: the versioned-registry field must survive the
		// round-trip (version-less records read back as 0 → v1).
		{ID: "job-2", Key: "k2", Kind: "toy_sum", Version: 2, Seed: 9, Tasks: 3,
			Spec: json.RawMessage(`{"n":3}`), State: JobSubmitted},
		{ID: "job-3", Key: "k3", Kind: "toy_sum", Seed: 1, Tasks: 1,
			Spec: json.RawMessage(`{"n":1}`), State: JobCanceled, Error: "context canceled"},
	}
	for _, rec := range recs {
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutHandle("h-1", "job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHandle("h-2", "job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteHandle("h-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPin("job-1"); err != nil {
		t.Fatal(err)
	}
}

func checkSnapshot(t *testing.T, snap Snapshot) {
	t.Helper()
	if len(snap.Games) != 1 || snap.Games["g-1"].NumMiners() != 2 {
		t.Fatalf("games = %+v", snap.Games)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("jobs = %+v", snap.Jobs)
	}
	if rec := snap.Jobs["job-1"]; rec.State != JobDone || string(rec.Result) != `{"total_runs":4}` {
		t.Fatalf("job-1 = %+v", rec)
	}
	if rec := snap.Jobs["job-2"]; rec.State != JobSubmitted || rec.Seed != 9 || rec.Version != 2 {
		t.Fatalf("job-2 = %+v", rec)
	}
	if rec := snap.Jobs["job-1"]; rec.Version != 0 {
		t.Fatalf("version-less record gained a version: %+v", rec)
	}
	if !reflect.DeepEqual(snap.Handles, map[string]string{"h-2": "job-2"}) {
		t.Fatalf("handles = %+v", snap.Handles)
	}
	if _, ok := snap.Pins["job-1"]; !ok || len(snap.Pins) != 1 {
		t.Fatalf("pins = %+v", snap.Pins)
	}
	// NextHandle remembers h-2 even though h-1 (also ever-minted) is gone.
	if snap.NextHandle != 2 {
		t.Fatalf("next handle = %d, want 2", snap.NextHandle)
	}
}

func TestMemRoundTrip(t *testing.T) {
	s := NewMem()
	populate(t, s)
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap)
	// Load copies: mutating the returned snapshot must not leak back.
	delete(snap.Jobs, "job-1")
	again, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Jobs) != 3 {
		t.Fatal("Load returned aliased maps")
	}
}

// TestMemJobRecordCap: the in-memory mirror must not outlive the manager's
// own retention — a default (no -data) server would otherwise leak one
// record per distinct job forever.
func TestMemJobRecordCap(t *testing.T) {
	s := NewMem()
	s.MaxJobs = 4
	if err := s.PutJob(JobRecord{ID: "job-1", State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 10; i++ {
		if err := s.PutJob(JobRecord{ID: "job-" + itoa(i), State: JobDone}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) > 4+1 { // quarter-cap hysteresis may hold one extra
		t.Fatalf("cap not enforced: %d records", len(snap.Jobs))
	}
	if _, ok := snap.Jobs["job-1"]; !ok {
		t.Fatal("submitted record evicted by the cap")
	}
	if _, ok := snap.Jobs["job-10"]; !ok {
		t.Fatal("newest terminal record evicted before older ones")
	}
}

// TestFileDirectoryLock: a second concurrent opener of the same data
// directory must fail fast, not silently compact the first one's appends
// away; the lock is released on Close.
func TestFileDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir); err == nil {
		t.Fatal("second open of a locked data directory succeeded")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

// TestFileRoundTrip: everything written before Close is replayed by a fresh
// OpenFile on the same directory.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap)
}

// TestFileTornTailTolerated: a crash mid-append leaves a partial final line;
// open must succeed and keep everything before it.
func TestFileTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"job","job":{"id":"job-9","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap)

	// Appending after a torn tail must start a fresh line, not merge into
	// the garbage: OpenFile truncates the torn bytes, so an op written in
	// this life survives the next one instead of bricking the log.
	if err := s2.PutPin("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("open after torn-tail truncation + append: %v", err)
	}
	snap3, err := s3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap3.Pins["job-2"]; !ok {
		t.Fatal("op appended after a torn tail was lost")
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}

	// Corruption anywhere else is an error, not silent data loss.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, append([]byte("garbage\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir); err == nil {
		t.Fatal("interior corruption was silently accepted")
	}
}

// TestFileCompaction: overwriting the same records many times triggers
// compaction — the log shrinks to the live state and replays identically.
func TestFileCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactMinOps = 16
	populate(t, s)
	rec := JobRecord{ID: "job-2", Key: "k2", Kind: "toy_sum", Version: 2, Seed: 9, Tasks: 3, State: JobSubmitted}
	for i := 0; i < 200; i++ {
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s.ops > 4*6+16 {
		t.Fatalf("log never compacted: %d pending ops", s.ops)
	}
	info, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 8<<10 {
		t.Fatalf("compacted log is %d bytes", info.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, snap)
}

// TestFileNextHandleSurvivesCompaction: compaction drops the released-handle
// ops NextHandle is derived from; the seq op must preserve it so a restart
// never re-mints a released handle ID.
func TestFileNextHandleSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactMinOps = 4
	if err := s.PutHandle("h-17", "job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteHandle("h-17"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // push past the compaction floor
		if err := s.PutPin("job-1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Handles) != 0 || snap.NextHandle != 17 {
		t.Fatalf("handles=%v next=%d, want empty/17", snap.Handles, snap.NextHandle)
	}
}

// TestFileJobRecordCap: compaction evicts the oldest terminal records past
// MaxJobs but never the submitted ones (restart recovery needs them).
func TestFileJobRecordCap(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MaxJobs = 4
	s.CompactMinOps = 1
	if err := s.PutJob(JobRecord{ID: "job-1", State: JobSubmitted}); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 10; i++ {
		rec := JobRecord{ID: "job-" + itoa(i), State: JobDone, Result: json.RawMessage(`1`)}
		if err := s.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) > 4 {
		t.Fatalf("cap not enforced: %d records", len(snap.Jobs))
	}
	if _, ok := snap.Jobs["job-1"]; !ok {
		t.Fatal("submitted record evicted by the cap")
	}
	if _, ok := snap.Jobs["job-10"]; !ok {
		t.Fatal("newest terminal record evicted before older ones")
	}
}

// TestFileClosedRejectsWrites: post-Close mutations fail (the server treats
// them as best-effort, but they must not silently succeed on a closed file).
func TestFileClosedRejectsWrites(t *testing.T) {
	s, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPin("job-1"); err == nil {
		t.Fatal("write on closed store succeeded")
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
