// Package trace records experiment output: named time series, tabular data,
// CSV emission, and ASCII line plots.
//
// Because the reproduction cannot rely on a plotting ecosystem, every figure
// in EXPERIMENTS.md is rendered twice: as machine-readable CSV (for external
// plotting) and as an ASCII chart (for eyeballing the shape in a terminal).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is a named sequence of (x, y) points, appended in x order by the
// producer. It is not safe for concurrent use.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// YAt returns the y value of the last point with Xs <= x, or NaN if none.
// Series are append-ordered by x, so this is a binary search.
func (s *Series) YAt(x float64) float64 {
	i := sort.SearchFloat64s(s.Xs, x)
	if i < len(s.Xs) && s.Xs[i] == x {
		return s.Ys[i]
	}
	if i == 0 {
		return math.NaN()
	}
	return s.Ys[i-1]
}

// WriteCSV writes one or more series sharing an x column to w. Series are
// sampled at the union of their x values; missing values are left empty.
func WriteCSV(w io.Writer, series ...*Series) error {
	// Union of x values.
	xset := map[float64]struct{}{}
	for _, s := range series {
		for _, x := range s.Xs {
			xset[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(series)+1)
	header = append(header, "x")
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	// Index each series for exact-x lookup.
	idx := make([]map[float64]float64, len(series))
	for i, s := range series {
		m := make(map[float64]float64, len(s.Xs))
		for j, x := range s.Xs {
			m[x] = s.Ys[j]
		}
		idx[i] = m
	}
	row := make([]string, len(series)+1)
	for _, x := range xs {
		row[0] = strconv.FormatFloat(x, 'g', -1, 64)
		for i := range series {
			if y, ok := idx[i][x]; ok {
				row[i+1] = strconv.FormatFloat(y, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// plotGlyphs distinguish overlaid series in ASCII plots.
var plotGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// PlotOptions configure ASCII rendering.
type PlotOptions struct {
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 18)
	Title  string
}

// Plot renders the series as an ASCII chart. Each series uses a distinct
// glyph; a legend is appended. Empty input yields an empty string.
func Plot(opt PlotOptions, series ...*Series) string {
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 18
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.Xs {
			if math.IsNaN(s.Ys[i]) || math.IsInf(s.Ys[i], 0) {
				continue
			}
			points++
			minX = math.Min(minX, s.Xs[i])
			maxX = math.Max(maxX, s.Xs[i])
			minY = math.Min(minY, s.Ys[i])
			maxY = math.Max(maxY, s.Ys[i])
		}
	}
	if points == 0 {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.Xs {
			y := s.Ys[i]
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			col := int((s.Xs[i] - minX) / (maxX - minX) * float64(opt.Width-1))
			row := opt.Height - 1 - int((y-minY)/(maxY-minY)*float64(opt.Height-1))
			grid[row][col] = glyph
		}
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", maxY)
		case opt.Height - 1:
			label = fmt.Sprintf("%10.4g", minY)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%s  %-10.4g%*s\n", strings.Repeat(" ", 10), minX, opt.Width-10, fmt.Sprintf("%.4g", maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String()
}

// Table accumulates rows for an aligned text table (experiment output).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 6, 64)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
