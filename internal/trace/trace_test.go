package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAddLen(t *testing.T) {
	s := NewSeries("hashrate")
	if s.Len() != 0 {
		t.Fatal("new series not empty")
	}
	s.Add(0, 1)
	s.Add(1, 2)
	if s.Len() != 2 || s.Name != "hashrate" {
		t.Fatalf("series state wrong: %+v", s)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := NewSeries("s")
	s.Add(0, 10)
	s.Add(5, 20)
	s.Add(10, 30)
	tests := []struct{ x, want float64 }{
		{0, 10}, {4.9, 10}, {5, 20}, {7, 20}, {10, 30}, {100, 30},
	}
	for _, tt := range tests {
		if got := s.YAt(tt.x); got != tt.want {
			t.Errorf("YAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if !math.IsNaN(s.YAt(-1)) {
		t.Error("YAt before first x should be NaN")
	}
}

func TestWriteCSVSharedAxis(t *testing.T) {
	a := NewSeries("a")
	a.Add(0, 1)
	a.Add(2, 3)
	b := NewSeries("b")
	b.Add(0, 5)
	b.Add(1, 6)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,a,b\n0,1,5\n1,,6\n2,3,\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestPlotBasicShape(t *testing.T) {
	s := NewSeries("line")
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i))
	}
	out := Plot(PlotOptions{Width: 20, Height: 5, Title: "T"}, s)
	if !strings.Contains(out, "T\n") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "line") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("glyph missing")
	}
	lines := strings.Split(out, "\n")
	// First plot row should contain the max-y label "10".
	if !strings.Contains(lines[1], "10") {
		t.Errorf("max label missing in %q", lines[1])
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot(PlotOptions{}, NewSeries("empty")); out != "" {
		t.Fatalf("empty plot should be empty string, got %q", out)
	}
}

func TestPlotSkipsNaN(t *testing.T) {
	s := NewSeries("s")
	s.Add(0, math.NaN())
	s.Add(1, 1)
	s.Add(2, 2)
	out := Plot(PlotOptions{Width: 10, Height: 4}, s)
	if out == "" {
		t.Fatal("plot with some valid points should render")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	s := NewSeries("flat")
	s.Add(0, 5)
	s.Add(1, 5)
	out := Plot(PlotOptions{Width: 10, Height: 4}, s)
	if out == "" {
		t.Fatal("constant series should still render")
	}
}

func TestPlotMultipleSeriesGlyphs(t *testing.T) {
	a := NewSeries("a")
	a.Add(0, 0)
	a.Add(1, 1)
	b := NewSeries("b")
	b.Add(0, 1)
	b.Add(1, 0)
	out := Plot(PlotOptions{Width: 10, Height: 4}, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected two glyphs in plot:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 22)
	out := tb.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "beta-long-name") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// All lines should align: header width == separator width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}
