// Package traffic is gocserve's admission-control layer: API-key
// authentication, per-client submission rate limits, and preemption-free
// priority classes. It sits between the HTTP serving layer and the engine —
// the server authenticates and rate-limits requests through a Controller,
// and the resolved client identity and priority weight ride into the
// engine's fair-share dispatcher, which enforces the per-client in-flight
// cost quota (engine.SetClientShares).
//
// Admission control is deliberately outside the determinism boundary:
// everything here changes only *whether* and *when* a job is admitted and
// scheduled, never what it computes. A job admitted under any key, quota, or
// priority produces bytes identical to the same spec and seed run open and
// alone — the property the traffic smoke test and trafficbench both gate on.
package traffic

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class is a preemption-free priority class. Classes translate to urgency
// weights in the engine's fair-share dispatcher: a high job's in-flight
// count is discounted and a low job's inflated when the scheduler compares
// loads, so higher classes drain faster under contention without ever
// preempting running tasks — and without touching results, cache keys, or
// wire compatibility (the zero value on the wire means ClassNormal).
type Class string

// The three priority classes. ClassNormal is the default: an envelope with
// no "priority" field — every v1 submission and every pre-existing v2
// client — runs at exactly the weight all jobs had before classes existed.
const (
	ClassLow    Class = "low"
	ClassNormal Class = "normal"
	ClassHigh   Class = "high"
)

// Class weights. One class step is a 2× urgency ratio — wide enough that
// priorities visibly shape throughput under contention, narrow enough that
// a busy low tenant still progresses at a useful rate on a small pool
// (weights only set ratios; absolute scale is meaningless).
const (
	weightLow    = 0.5
	weightNormal = 1.0
	weightHigh   = 2.0
)

// ParseClass validates a wire priority string. The empty string is
// ClassNormal (the field is optional on the envelope); anything other than
// the three class names is an error the server maps to a schema violation.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return ClassNormal, nil
	case ClassLow, ClassNormal, ClassHigh:
		return Class(s), nil
	}
	return "", fmt.Errorf("unknown priority %q (want %q, %q, or %q)", s, ClassLow, ClassNormal, ClassHigh)
}

// Weight returns the class's urgency weight for the fair-share dispatcher.
// Unknown classes weigh as normal, so a zero Class is always safe.
func (c Class) Weight() float64 {
	switch c {
	case ClassLow:
		return weightLow
	case ClassHigh:
		return weightHigh
	}
	return weightNormal
}

// Keyring maps API keys to client identities. Keys are stored as SHA-256
// digests and looked up with a constant-time scan over every entry, so
// neither key content nor which entry matched leaks through timing. The
// zero value / nil Keyring authenticates nobody; a nil *Keyring inside a
// Config means the server is open (no auth at all).
type Keyring struct {
	entries []keyEntry
}

type keyEntry struct {
	client string
	digest [sha256.Size]byte
}

// ParseKeyring reads a keyring: one "client-id:key" entry per line, with
// blank lines and #-comments ignored. Client IDs may not repeat (one key per
// client keeps quota attribution unambiguous), may not contain whitespace or
// ':', and keys must be at least 8 characters.
func ParseKeyring(r io.Reader) (*Keyring, error) {
	k := &Keyring{}
	seenClient := map[string]bool{}
	seenKey := map[[sha256.Size]byte]bool{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		client, key, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("keyring line %d: want client:key", line)
		}
		client = strings.TrimSpace(client)
		key = strings.TrimSpace(key)
		switch {
		case client == "":
			return nil, fmt.Errorf("keyring line %d: empty client id", line)
		case strings.ContainsAny(client, " \t:"):
			return nil, fmt.Errorf("keyring line %d: client id %q contains whitespace or ':'", line, client)
		case len(key) < 8:
			return nil, fmt.Errorf("keyring line %d: key for %q is shorter than 8 characters", line, client)
		case seenClient[client]:
			return nil, fmt.Errorf("keyring line %d: duplicate client %q", line, client)
		}
		d := sha256.Sum256([]byte(key))
		if seenKey[d] {
			return nil, fmt.Errorf("keyring line %d: key for %q duplicates an earlier client's key", line, client)
		}
		seenClient[client] = true
		seenKey[d] = true
		k.entries = append(k.entries, keyEntry{client: client, digest: d})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("keyring: %w", err)
	}
	if len(k.entries) == 0 {
		return nil, fmt.Errorf("keyring holds no entries")
	}
	return k, nil
}

// LoadKeyring reads a keyring file (the gocserve -keys flag).
func LoadKeyring(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	k, err := ParseKeyring(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return k, nil
}

// Lookup resolves a presented key to its client identity. The scan visits
// every entry and compares fixed-size digests regardless of where (or
// whether) a match occurs, so lookup time is independent of both the key
// material and the matching entry's position.
func (k *Keyring) Lookup(key string) (client string, ok bool) {
	if k == nil || len(k.entries) == 0 {
		return "", false
	}
	d := sha256.Sum256([]byte(key))
	match := -1
	for i := range k.entries {
		if subtle.ConstantTimeCompare(d[:], k.entries[i].digest[:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		return "", false
	}
	return k.entries[match].client, true
}

// Len returns the number of keyed clients.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	return len(k.entries)
}

// Clients lists the keyed client identities, sorted.
func (k *Keyring) Clients() []string {
	if k == nil {
		return nil
	}
	out := make([]string, 0, len(k.entries))
	for _, e := range k.entries {
		out = append(out, e.client)
	}
	sort.Strings(out)
	return out
}

// maxBuckets bounds the limiter's per-client state. Keyed clients come from
// the (bounded) keyring, so the cap only matters for pathological synthetic
// identities; past it the stalest bucket is recycled.
const maxBuckets = 4096

// Limiter is a per-client token bucket over wall-clock time: each client
// accrues `rate` tokens per second up to `burst`, and each admitted
// submission spends one. A denied submission reports how long until the next
// token — the Retry-After the server sends with its 429.
type Limiter struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64 // bucket capacity (minimum 1)

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
	now     func() time.Time   // injectable clock for tests; set before first Allow
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter admitting `rate` submissions per second per
// client with bursts up to `burst`. rate <= 0 disables limiting entirely;
// burst < 1 is raised to 1 (a bucket that can never hold a whole token
// would deny everything).
func NewLimiter(rate float64, burst int) *Limiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{rate: rate, burst: b, buckets: map[string]*bucket{}, now: time.Now}
}

// Allow spends one token from client's bucket. When the bucket is empty it
// reports ok=false and the wait until one token will have accrued.
func (l *Limiter) Allow(client string) (retryAfter time.Duration, ok bool) {
	if l == nil || l.rate <= 0 {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.evictStalestLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / l.rate
	return time.Duration(need * float64(time.Second)), false
}

// evictStalestLocked recycles the bucket that was touched longest ago. A
// recycled client restarts with a full bucket — strictly more permissive,
// never a lockout. Callers hold l.mu.
func (l *Limiter) evictStalestLocked() {
	var stalest string
	var at time.Time
	first := true
	for c, b := range l.buckets {
		if first || b.last.Before(at) || (b.last.Equal(at) && c < stalest) {
			stalest, at, first = c, b.last, false
		}
	}
	delete(l.buckets, stalest)
}

// Config assembles one Controller.
type Config struct {
	// Keyring authenticates clients. nil runs the server open: every
	// request is the anonymous client "" and nothing 401s.
	Keyring *Keyring
	// Rate is the per-client submission rate limit in submissions/second
	// (token-bucket; <= 0 disables rate limiting).
	Rate float64
	// Burst is the token-bucket depth (how many submissions a quiet client
	// may fire back-to-back). Values < 1 mean 1.
	Burst int
	// MaxShare caps each client's share of the engine's aggregate in-flight
	// cost, in (0, 1]; 0 disables the quota. The cap is work-conserving:
	// it binds only while another client has work waiting, so a lone client
	// still uses the whole pool. Enforced inside the engine's fair-share
	// take path — push it there with engine.SetClientShares(MaxShare, nil).
	MaxShare float64
}

// ClientStats counts one client's admission outcomes.
type ClientStats struct {
	// Admitted counts submissions that passed the rate limiter.
	Admitted uint64 `json:"admitted"`
	// Throttled counts submissions denied with 429.
	Throttled uint64 `json:"throttled,omitempty"`
}

// Stats is a point-in-time admission snapshot, served from /healthz.
type Stats struct {
	// Enforced reports whether a keyring gates requests (false = open server).
	Enforced bool `json:"enforced"`
	// Clients is the keyring size (0 when open).
	Clients int `json:"clients,omitempty"`
	// RatePerSec / Burst / MaxShare echo the active policy.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	MaxShare   float64 `json:"max_share,omitempty"`
	// Unauthorized counts requests rejected 401.
	Unauthorized uint64 `json:"unauthorized,omitempty"`
	// PerClient maps client identity to its admission counters. The
	// anonymous client of an open server appears as "".
	PerClient map[string]ClientStats `json:"per_client,omitempty"`
}

// Controller is the server's admission-control state: the keyring, the
// rate limiter, and the counters /healthz reports. Safe for concurrent use.
type Controller struct {
	cfg     Config
	limiter *Limiter

	mu           sync.Mutex
	perClient    map[string]*ClientStats // guarded by mu
	unauthorized uint64                  // guarded by mu
}

// New assembles a Controller from cfg. The zero Config is a fully open,
// unlimited controller — exactly the pre-traffic server behavior.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:       cfg,
		limiter:   NewLimiter(cfg.Rate, cfg.Burst),
		perClient: map[string]*ClientStats{},
	}
}

// Enforced reports whether requests must present a known API key.
func (c *Controller) Enforced() bool { return c.cfg.Keyring.Len() > 0 }

// MaxShare returns the configured per-client in-flight cost share cap
// (0 = unlimited) — the value to push into engine.SetClientShares.
func (c *Controller) MaxShare() float64 { return c.cfg.MaxShare }

// Authenticate resolves a presented API key to a client identity. On an
// open controller (no keyring) every request — keyed or not — is the
// anonymous client "". With a keyring, a missing or unknown key is rejected.
func (c *Controller) Authenticate(key string) (client string, ok bool) {
	if !c.Enforced() {
		return "", true
	}
	return c.cfg.Keyring.Lookup(key)
}

// NoteUnauthorized counts a request rejected for a missing or unknown key.
func (c *Controller) NoteUnauthorized() {
	c.mu.Lock()
	c.unauthorized++
	c.mu.Unlock()
}

// Admit runs one submission through client's token bucket, recording the
// outcome. Denials report the Retry-After the 429 should carry.
func (c *Controller) Admit(client string) (retryAfter time.Duration, ok bool) {
	retryAfter, ok = c.limiter.Allow(client)
	c.mu.Lock()
	st := c.perClient[client]
	if st == nil {
		st = &ClientStats{}
		c.perClient[client] = st
	}
	if ok {
		st.Admitted++
	} else {
		st.Throttled++
	}
	c.mu.Unlock()
	return retryAfter, ok
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Enforced:     c.Enforced(),
		Clients:      c.cfg.Keyring.Len(),
		RatePerSec:   c.cfg.Rate,
		Burst:        c.cfg.Burst,
		MaxShare:     c.cfg.MaxShare,
		Unauthorized: c.unauthorized,
	}
	if len(c.perClient) > 0 {
		s.PerClient = make(map[string]ClientStats, len(c.perClient))
		for client, st := range c.perClient {
			s.PerClient[client] = *st
		}
	}
	return s
}
