package traffic

import (
	"strings"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in     string
		want   Class
		weight float64
		err    bool
	}{
		{"", ClassNormal, 1.0, false},
		{"low", ClassLow, 0.5, false},
		{"normal", ClassNormal, 1.0, false},
		{"high", ClassHigh, 2.0, false},
		{"urgent", "", 0, true},
		{"Normal", "", 0, true}, // classes are case-sensitive wire tokens
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseClass(%q): want error, got %q", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseClass(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseClass(%q) = %q, want %q", c.in, got, c.want)
		}
		if w := got.Weight(); w != c.weight {
			t.Errorf("%q.Weight() = %v, want %v", got, w, c.weight)
		}
	}
	// Class ordering the scheduler relies on: each step is a strict
	// urgency increase.
	if !(ClassLow.Weight() < ClassNormal.Weight() && ClassNormal.Weight() < ClassHigh.Weight()) {
		t.Error("class weights are not strictly increasing low < normal < high")
	}
}

func TestParseKeyring(t *testing.T) {
	k, err := ParseKeyring(strings.NewReader(`
# analytics team
alpha:alpha-secret-1

beta:  beta-secret-2
`))
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	if got := k.Clients(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Clients = %v", got)
	}
	for key, want := range map[string]string{
		"alpha-secret-1": "alpha",
		"beta-secret-2":  "beta",
	} {
		client, ok := k.Lookup(key)
		if !ok || client != want {
			t.Errorf("Lookup(%q) = %q, %v; want %q, true", key, client, ok, want)
		}
	}
	for _, bad := range []string{"", "alpha-secret", "alpha-secret-11", "ALPHA-SECRET-1"} {
		if client, ok := k.Lookup(bad); ok {
			t.Errorf("Lookup(%q) unexpectedly matched %q", bad, client)
		}
	}
}

func TestParseKeyringRejectsBadEntries(t *testing.T) {
	for name, text := range map[string]string{
		"no separator":    "alphaalpha-secret-1",
		"empty client":    ":alpha-secret-1",
		"short key":       "alpha:short",
		"space in client": "al pha:alpha-secret-1",
		"dup client":      "alpha:alpha-secret-1\nalpha:other-secret-2",
		"dup key":         "alpha:alpha-secret-1\nbeta:alpha-secret-1",
		"empty file":      "# nothing\n",
	} {
		if _, err := ParseKeyring(strings.NewReader(text)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestNilKeyringLookup(t *testing.T) {
	var k *Keyring
	if _, ok := k.Lookup("anything"); ok {
		t.Error("nil keyring matched a key")
	}
	if k.Len() != 0 || k.Clients() != nil {
		t.Error("nil keyring is not empty")
	}
}

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeLimiter(rate float64, burst int) (*Limiter, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l := NewLimiter(rate, burst)
	l.now = fc.now
	return l, fc
}

func TestLimiterBurstThenThrottle(t *testing.T) {
	l, fc := newFakeLimiter(2, 3) // 2/sec, burst 3
	for i := 0; i < 3; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatalf("burst submission %d denied", i)
		}
	}
	wait, ok := l.Allow("a")
	if ok {
		t.Fatal("4th immediate submission admitted past the burst")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 500ms] at 2/sec", wait)
	}
	// Waiting exactly the advertised Retry-After accrues the next token.
	fc.advance(wait)
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("submission denied after waiting the advertised Retry-After")
	}
	// Clients have independent buckets.
	if _, ok := l.Allow("b"); !ok {
		t.Fatal("fresh client throttled by another client's spend")
	}
}

func TestLimiterRefillCapsAtBurst(t *testing.T) {
	l, fc := newFakeLimiter(10, 2)
	for i := 0; i < 2; i++ {
		l.Allow("a")
	}
	fc.advance(time.Hour) // long idle must not bank unbounded tokens
	for i := 0; i < 2; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatalf("submission %d denied after refill", i)
		}
	}
	if _, ok := l.Allow("a"); ok {
		t.Fatal("tokens accrued past the burst cap")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l, _ := newFakeLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatal("disabled limiter denied a submission")
		}
	}
}

func TestControllerOpenVsEnforced(t *testing.T) {
	open := New(Config{})
	if open.Enforced() {
		t.Fatal("zero-config controller is enforced")
	}
	if client, ok := open.Authenticate("whatever"); !ok || client != "" {
		t.Fatalf("open Authenticate = %q, %v; want anonymous pass", client, ok)
	}

	k, err := ParseKeyring(strings.NewReader("alpha:alpha-secret-1"))
	if err != nil {
		t.Fatal(err)
	}
	gated := New(Config{Keyring: k, Rate: 100, Burst: 2, MaxShare: 0.5})
	if !gated.Enforced() {
		t.Fatal("keyed controller not enforced")
	}
	if _, ok := gated.Authenticate(""); ok {
		t.Fatal("missing key authenticated")
	}
	if client, ok := gated.Authenticate("alpha-secret-1"); !ok || client != "alpha" {
		t.Fatalf("Authenticate = %q, %v", client, ok)
	}
	gated.NoteUnauthorized()
	if _, ok := gated.Admit("alpha"); !ok {
		t.Fatal("first submission throttled")
	}
	st := gated.Stats()
	if !st.Enforced || st.Clients != 1 || st.Unauthorized != 1 || st.MaxShare != 0.5 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.PerClient["alpha"].Admitted != 1 {
		t.Fatalf("per-client stats = %+v", st.PerClient)
	}
}
