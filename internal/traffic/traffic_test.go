package traffic

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in     string
		want   Class
		weight float64
		err    bool
	}{
		{"", ClassNormal, 1.0, false},
		{"low", ClassLow, 0.5, false},
		{"normal", ClassNormal, 1.0, false},
		{"high", ClassHigh, 2.0, false},
		{"urgent", "", 0, true},
		{"Normal", "", 0, true}, // classes are case-sensitive wire tokens
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseClass(%q): want error, got %q", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseClass(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseClass(%q) = %q, want %q", c.in, got, c.want)
		}
		if w := got.Weight(); w != c.weight {
			t.Errorf("%q.Weight() = %v, want %v", got, w, c.weight)
		}
	}
	// Class ordering the scheduler relies on: each step is a strict
	// urgency increase.
	if !(ClassLow.Weight() < ClassNormal.Weight() && ClassNormal.Weight() < ClassHigh.Weight()) {
		t.Error("class weights are not strictly increasing low < normal < high")
	}
}

func TestParseKeyring(t *testing.T) {
	k, err := ParseKeyring(strings.NewReader(`
# analytics team
alpha:alpha-secret-1

beta:  beta-secret-2
`))
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	if got := k.Clients(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Clients = %v", got)
	}
	for key, want := range map[string]string{
		"alpha-secret-1": "alpha",
		"beta-secret-2":  "beta",
	} {
		client, ok := k.Lookup(key)
		if !ok || client != want {
			t.Errorf("Lookup(%q) = %q, %v; want %q, true", key, client, ok, want)
		}
	}
	for _, bad := range []string{"", "alpha-secret", "alpha-secret-11", "ALPHA-SECRET-1"} {
		if client, ok := k.Lookup(bad); ok {
			t.Errorf("Lookup(%q) unexpectedly matched %q", bad, client)
		}
	}
}

func TestParseKeyringRejectsBadEntries(t *testing.T) {
	for name, text := range map[string]string{
		"no separator":    "alphaalpha-secret-1",
		"empty client":    ":alpha-secret-1",
		"short key":       "alpha:short",
		"space in client": "al pha:alpha-secret-1",
		"dup client":      "alpha:alpha-secret-1\nalpha:other-secret-2",
		"dup key":         "alpha:alpha-secret-1\nbeta:alpha-secret-1",
		"empty file":      "# nothing\n",
	} {
		if _, err := ParseKeyring(strings.NewReader(text)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestNilKeyringLookup(t *testing.T) {
	var k *Keyring
	if _, ok := k.Lookup("anything"); ok {
		t.Error("nil keyring matched a key")
	}
	if k.Len() != 0 || k.Clients() != nil {
		t.Error("nil keyring is not empty")
	}
}

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeLimiter(rate float64, burst int) (*Limiter, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l := NewLimiter(rate, burst)
	l.now = fc.now
	return l, fc
}

func TestLimiterBurstThenThrottle(t *testing.T) {
	l, fc := newFakeLimiter(2, 3) // 2/sec, burst 3
	for i := 0; i < 3; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatalf("burst submission %d denied", i)
		}
	}
	wait, ok := l.Allow("a")
	if ok {
		t.Fatal("4th immediate submission admitted past the burst")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 500ms] at 2/sec", wait)
	}
	// Waiting exactly the advertised Retry-After accrues the next token.
	fc.advance(wait)
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("submission denied after waiting the advertised Retry-After")
	}
	// Clients have independent buckets.
	if _, ok := l.Allow("b"); !ok {
		t.Fatal("fresh client throttled by another client's spend")
	}
}

func TestLimiterRefillCapsAtBurst(t *testing.T) {
	l, fc := newFakeLimiter(10, 2)
	for i := 0; i < 2; i++ {
		l.Allow("a")
	}
	fc.advance(time.Hour) // long idle must not bank unbounded tokens
	for i := 0; i < 2; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatalf("submission %d denied after refill", i)
		}
	}
	if _, ok := l.Allow("a"); ok {
		t.Fatal("tokens accrued past the burst cap")
	}
}

// TestLimiterRetryAfterExactMath pins the denial hint to the token-bucket
// arithmetic, on the fake clock so every quantity is exact: with an empty
// bucket at rate r the wait is exactly 1/r, a partial refill shortens it by
// exactly the accrued fraction, and waiting the advertised hint admits with
// zero tokens to spare. This is the number the server ceilings into the
// Retry-After header and the per-item batch hint.
func TestLimiterRetryAfterExactMath(t *testing.T) {
	l, fc := newFakeLimiter(2, 1) // 2 tokens/sec, burst 1
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("first submission denied")
	}
	// Bucket is now exactly empty: need = (1-0)/2 sec = 500ms.
	wait, ok := l.Allow("a")
	if ok || wait != 500*time.Millisecond {
		t.Fatalf("empty-bucket hint = %v, %v; want exactly 500ms denial", wait, ok)
	}
	// A quarter second accrues exactly half a token: need = (1-0.5)/2.
	fc.advance(250 * time.Millisecond)
	wait, ok = l.Allow("a")
	if ok || wait != 250*time.Millisecond {
		t.Fatalf("half-token hint = %v, %v; want exactly 250ms denial", wait, ok)
	}
	// Waiting out the hint lands on exactly one token — admitted, and the
	// spend leaves exactly zero, so the next hint is the full 500ms again.
	fc.advance(250 * time.Millisecond)
	if _, ok := l.Allow("a"); !ok {
		t.Fatal("submission denied after waiting the advertised hint")
	}
	wait, ok = l.Allow("a")
	if ok || wait != 500*time.Millisecond {
		t.Fatalf("post-spend hint = %v, %v; want exactly 500ms denial", wait, ok)
	}
}

// TestLimiterEvictionAtCap drives the bucket map to maxBuckets on the fake
// clock: the next unseen client recycles the stalest bucket, a recycled
// client restarts with a full bucket (more permissive, never a lockout), and
// untouched clients keep their spent state.
func TestLimiterEvictionAtCap(t *testing.T) {
	l, fc := newFakeLimiter(0.001, 1) // refill slow enough to be negligible
	name := func(i int) string { return fmt.Sprintf("c%04d", i) }
	for i := 0; i < maxBuckets; i++ {
		if _, ok := l.Allow(name(i)); !ok {
			t.Fatalf("client %d denied its first submission", i)
		}
		fc.advance(time.Millisecond) // distinct last-touched times
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("bucket map holds %d entries, want %d", len(l.buckets), maxBuckets)
	}
	// A newcomer past the cap evicts the stalest (client 0) and is admitted
	// from a fresh full bucket.
	if _, ok := l.Allow("newcomer"); !ok {
		t.Fatal("newcomer denied at the cap")
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("bucket map grew past the cap: %d", len(l.buckets))
	}
	if _, stale := l.buckets[name(0)]; stale {
		t.Fatal("stalest bucket survived eviction")
	}
	// The evicted client restarts full — admitted again, not locked out.
	if _, ok := l.Allow(name(0)); !ok {
		t.Fatal("recycled client denied; eviction must never lock out")
	}
	// An untouched client still owns its (empty) bucket.
	if _, ok := l.Allow(name(7)); ok {
		t.Fatal("unevicted client's spent bucket refilled by eviction churn")
	}
}

// TestLimiterEvictionTieBreaksByName: equal last-touched times recycle the
// lexicographically smaller client, so eviction is deterministic.
func TestLimiterEvictionTieBreaksByName(t *testing.T) {
	l, _ := newFakeLimiter(1, 1)
	l.Allow("b")
	l.Allow("a") // same fake-clock instant
	l.mu.Lock()
	l.evictStalestLocked()
	l.mu.Unlock()
	if _, ok := l.buckets["a"]; ok {
		t.Fatal("tie eviction kept the lexicographically smaller client")
	}
	if _, ok := l.buckets["b"]; !ok {
		t.Fatal("tie eviction recycled the wrong bucket")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l, _ := newFakeLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if _, ok := l.Allow("a"); !ok {
			t.Fatal("disabled limiter denied a submission")
		}
	}
}

func TestControllerOpenVsEnforced(t *testing.T) {
	open := New(Config{})
	if open.Enforced() {
		t.Fatal("zero-config controller is enforced")
	}
	if client, ok := open.Authenticate("whatever"); !ok || client != "" {
		t.Fatalf("open Authenticate = %q, %v; want anonymous pass", client, ok)
	}

	k, err := ParseKeyring(strings.NewReader("alpha:alpha-secret-1"))
	if err != nil {
		t.Fatal(err)
	}
	gated := New(Config{Keyring: k, Rate: 100, Burst: 2, MaxShare: 0.5})
	if !gated.Enforced() {
		t.Fatal("keyed controller not enforced")
	}
	if _, ok := gated.Authenticate(""); ok {
		t.Fatal("missing key authenticated")
	}
	if client, ok := gated.Authenticate("alpha-secret-1"); !ok || client != "alpha" {
		t.Fatalf("Authenticate = %q, %v", client, ok)
	}
	gated.NoteUnauthorized()
	if _, ok := gated.Admit("alpha"); !ok {
		t.Fatal("first submission throttled")
	}
	st := gated.Stats()
	if !st.Enforced || st.Clients != 1 || st.Unauthorized != 1 || st.MaxShare != 0.5 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.PerClient["alpha"].Admitted != 1 {
		t.Fatalf("per-client stats = %+v", st.PerClient)
	}
}
