// Package trafficbench is the multi-tenant load harness for the admission
// control subsystem (internal/traffic): it stands up a keyed gocserve
// in-process, drives four tenants at mixed priorities and job sizes through
// the real HTTP stack, and reports whether the weighted fair-share split,
// the 401/429 edges, and the result bytes all behave.
//
// Like distbench, the workload is sleep-cost tasks, so the measured shares
// are a function of scheduling — not of how many physical cores the CI
// machine happens to have — and every run re-checks determinism: each
// admitted tenant's aggregate result is byte-compared against a rerun of
// the same (spec, seed) on a fresh single-client server. Admission control
// changes who runs when; it must never change result bytes.
//
// The fairness measurement: one job per tenant, sized so the high-priority
// tenant drains first while everyone else still has pending work. At the
// moment the first tenant finishes, each tenant's completed-task count is a
// direct sample of its capacity share, compared against the
// priority-weighted fair share w_i/Σw. The acceptance bound is a relative
// deviation of at most 20% per tenant.
package trafficbench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
	"gameofcoins/internal/traffic"
)

// Options sizes the harness. The zero value is usable: withDefaults fills
// in the benchmark-scale configuration.
type Options struct {
	// Workers is the contended server's engine pool size. Tasks sleep
	// rather than burn CPU, so this is a scheduling parameter, not a
	// hardware requirement.
	Workers int
	// TaskDur is the per-task sleep before scaling. Longer tasks give the
	// fair-share sampler a wider window and a cleaner share estimate.
	TaskDur time.Duration
	// Rate and Burst configure the per-client submission token bucket on
	// the contended server; the burst probe submits Burst+3 jobs
	// back-to-back with retries disabled to force 429s.
	Rate  float64
	Burst int
	// Scale multiplies TaskDur. Tests shrink it; 1.0 is benchmark scale.
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.TaskDur <= 0 {
		o.TaskDur = 5 * time.Millisecond
	}
	if o.Rate <= 0 {
		o.Rate = 50
	}
	if o.Burst <= 0 {
		o.Burst = 8
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

// FairShareTolerance is the acceptance bound on each tenant's relative
// deviation from its priority-weighted fair share.
const FairShareTolerance = 0.20

// tenant is one simulated client of the contended server.
type tenant struct {
	name     string
	key      string
	priority string
	weight   float64
	tasks    int
	seed     uint64
}

// tenants returns the fixed four-tenant fleet: one high, two normal, one
// low, with mixed job sizes chosen so the high tenant finishes first while
// every other tenant still has pending work (the condition under which the
// snapshot is a clean capacity-share sample). Seeds are distinct so no two
// tenants deduplicate onto the same cached job.
func tenants() []tenant {
	return []tenant{
		{name: "anna", key: "anna-key-000001", priority: "high", weight: 2.0, tasks: 240, seed: 101},
		{name: "bert", key: "bert-key-000002", priority: "normal", weight: 1.0, tasks: 160, seed: 102},
		{name: "cleo", key: "cleo-key-000003", priority: "normal", weight: 1.0, tasks: 160, seed: 103},
		{name: "dane", key: "dane-key-000004", priority: "low", weight: 0.5, tasks: 120, seed: 104},
	}
}

// TenantReport is one tenant's slice of the run.
type TenantReport struct {
	Client   string  `json:"client"`
	Priority string  `json:"priority"`
	Weight   float64 `json:"weight"`
	Tasks    int     `json:"tasks"`
	// DoneAtSnapshot is the tenant's completed-task count at the moment
	// the first tenant finished; Share is its fraction of all completed
	// tasks at that instant, FairShare the priority-weighted target
	// w_i/Σw, and Deviation the relative error |Share-FairShare|/FairShare.
	DoneAtSnapshot int     `json:"done_at_snapshot"`
	Share          float64 `json:"share"`
	FairShare      float64 `json:"fair_share"`
	Deviation      float64 `json:"deviation"`
	// Identical reports that this tenant's aggregate result bytes matched
	// a rerun of the same (spec, seed) on a fresh single-client server.
	Identical bool `json:"identical"`
}

// Report is the benchmark's JSON document.
type Report struct {
	Workers    int     `json:"workers"`
	TaskDurMS  float64 `json:"task_dur_ms"`
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`

	// UnauthStatus is the HTTP status an unkeyed submission received
	// (must be 401: job endpoints are gated, /healthz and /v2/specs open).
	UnauthStatus int `json:"unauth_status"`
	// ProbeSubmitted/ProbeThrottled count the no-retry burst probe's
	// submissions and 429 rejections; ProbeRetryAfterSec is the largest
	// Retry-After the probe saw (degradation is clean only if > 0).
	ProbeSubmitted     int     `json:"probe_submitted"`
	ProbeThrottled     int     `json:"probe_throttled"`
	ProbeRetryAfterSec float64 `json:"probe_retry_after_sec"`

	// MakespanMS is burst-submit to last-tenant-done on the contended
	// server; MaxDeviation the worst tenant's fair-share deviation.
	MakespanMS   float64        `json:"makespan_ms"`
	MaxDeviation float64        `json:"max_deviation"`
	Tenants      []TenantReport `json:"tenants"`

	// Pass folds the acceptance: unauthenticated 401, at least one 429
	// carrying Retry-After, every tenant within FairShareTolerance of its
	// weighted fair share, and every result byte-identical to its
	// single-client rerun.
	Pass bool `json:"pass"`
}

func (r Report) String() string {
	return fmt.Sprintf(
		"traffic: %d tenants on %d workers: makespan %.1fms, max fair-share deviation %.1f%% (bound %.0f%%); unauth=%d, %d/%d probe submissions throttled (Retry-After %.2fs), identical=%v, pass=%v",
		len(r.Tenants), r.Workers, r.MakespanMS, 100*r.MaxDeviation, 100*FairShareTolerance,
		r.UnauthStatus, r.ProbeThrottled, r.ProbeSubmitted, r.ProbeRetryAfterSec,
		r.allIdentical(), r.Pass)
}

func (r Report) allIdentical() bool {
	for _, t := range r.Tenants {
		if !t.Identical {
			return false
		}
	}
	return len(r.Tenants) > 0
}

// benchSpec is the tenant workload: NTasks uniform sleep tasks, each
// returning a value drawn from its forked stream so the byte-identity
// recheck compares real deterministic content, not just task counts.
type benchSpec struct {
	NTasks  int   `json:"tasks"`
	DelayNS int64 `json:"delay_ns"`
}

type benchTask struct {
	Index int    `json:"index"`
	U     uint64 `json:"u"`
}

func (s benchSpec) Kind() string { return "trafficbench_sleep" }
func (s benchSpec) Tasks() int   { return s.NTasks }

func (s benchSpec) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	t := time.NewTimer(time.Duration(s.DelayNS))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return benchTask{Index: i, U: r.Uint64()}, nil
}

func (s benchSpec) Aggregate(results []any) (any, error) {
	out := make([]benchTask, len(results))
	for i, r := range results {
		t, ok := r.(benchTask)
		if !ok {
			return nil, fmt.Errorf("task %d: unexpected type %T", i, r)
		}
		out[i] = t
	}
	return out, nil
}

func (s benchSpec) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

func (s benchSpec) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v benchTask
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func init() {
	engine.RegisterSpec("trafficbench_sleep", 1, func(raw json.RawMessage) (engine.Spec, error) {
		var s benchSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	}, nil)
}

// Run executes the harness and returns the report. An error means the
// harness itself broke (a tenant's job failed, a request other than the
// deliberate probes errored); a run that merely misses an acceptance bound
// returns Pass=false with the evidence in the report.
func Run(opts Options) (Report, error) {
	o := opts.withDefaults()
	fleet := tenants()
	rep := Report{
		Workers:    o.Workers,
		TaskDurMS:  float64(o.TaskDur) * o.Scale / float64(time.Millisecond),
		RatePerSec: o.Rate,
		Burst:      o.Burst,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The contended server: keyed, rate limited, priority-weighted. One
	// extra "probe" identity exists purely to absorb the 429 burst so the
	// throttling it provokes never skews the four measured tenants.
	var keys strings.Builder
	for _, t := range fleet {
		fmt.Fprintf(&keys, "%s:%s\n", t.name, t.key)
	}
	const probeKey = "probe-key-000005"
	fmt.Fprintf(&keys, "probe:%s\n", probeKey)
	kr, err := traffic.ParseKeyring(strings.NewReader(keys.String()))
	if err != nil {
		return rep, err
	}
	srv, err := server.NewWithOptions(o.Workers, server.Options{
		Traffic: traffic.New(traffic.Config{Keyring: kr, Rate: o.Rate, Burst: o.Burst}),
	})
	if err != nil {
		return rep, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	delay := int64(float64(o.TaskDur) * o.Scale)

	// Edge 1: an unkeyed submission must bounce off the auth gate.
	rep.UnauthStatus = submitStatus(ctx, client.New(ts.URL), benchSpec{NTasks: 1, DelayNS: delay}, 1)

	// Edge 2: a back-to-back burst past the token bucket, retries off.
	// Identical envelopes are fine here — deduplication happens after
	// admission, so every submission spends a token.
	probe := client.New(ts.URL, client.WithAPIKey(probeKey), client.WithRetryLimit(0))
	probeSpec := benchSpec{NTasks: 1, DelayNS: delay}
	for i := 0; i < o.Burst+3; i++ {
		rep.ProbeSubmitted++
		_, err := probe.Submit(ctx, probeSpec.Kind(), 1, probeSpec)
		var apiErr *client.APIError
		switch {
		case err == nil:
		case errors.As(err, &apiErr) && apiErr.StatusCode == 429:
			rep.ProbeThrottled++
			if ra := apiErr.RetryAfter.Seconds(); ra > rep.ProbeRetryAfterSec {
				rep.ProbeRetryAfterSec = ra
			}
		default:
			return rep, fmt.Errorf("burst probe submission %d: %w", i, err)
		}
	}

	// The measured burst: one mixed-size job per tenant, submitted
	// together. Default clients retry on 429, so admission pressure delays
	// but never drops a tenant.
	handles := make([]*client.Handle, len(fleet))
	start := time.Now()
	for i, t := range fleet {
		c := client.New(ts.URL, client.WithAPIKey(t.key))
		h, err := c.Submit(ctx, "trafficbench_sleep", t.seed,
			benchSpec{NTasks: t.tasks, DelayNS: delay}, client.WithPriority(t.priority))
		if err != nil {
			return rep, fmt.Errorf("tenant %s submit: %w", t.name, err)
		}
		handles[i] = h
	}

	// Sample completed-task counts until the first tenant finishes: that
	// round is the capacity-share snapshot. Then wait out the rest.
	snapshot, err := sampleUntilFirstDone(ctx, fleet, handles)
	if err != nil {
		return rep, err
	}
	for i, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			return rep, fmt.Errorf("tenant %s wait: %w", fleet[i].name, err)
		}
	}
	rep.MakespanMS = float64(time.Since(start)) / float64(time.Millisecond)

	// Fold the snapshot into shares vs priority-weighted fair shares.
	var sumW float64
	var sumDone int
	for i, t := range fleet {
		sumW += t.weight
		sumDone += snapshot[i]
	}
	if sumDone == 0 {
		return rep, errors.New("fair-share snapshot sampled zero completed tasks")
	}
	for i, t := range fleet {
		tr := TenantReport{
			Client:         t.name,
			Priority:       t.priority,
			Weight:         t.weight,
			Tasks:          t.tasks,
			DoneAtSnapshot: snapshot[i],
			Share:          float64(snapshot[i]) / float64(sumDone),
			FairShare:      t.weight / sumW,
		}
		tr.Deviation = abs(tr.Share-tr.FairShare) / tr.FairShare
		if tr.Deviation > rep.MaxDeviation {
			rep.MaxDeviation = tr.Deviation
		}
		rep.Tenants = append(rep.Tenants, tr)
	}

	// Determinism recheck: every tenant's aggregate bytes must match a
	// rerun of the same (spec, seed) on a fresh, open, single-client
	// server. Admission control must be invisible in the result plane.
	solo := server.New(o.Workers)
	defer solo.Close()
	tsSolo := httptest.NewServer(solo)
	defer tsSolo.Close()
	soloClient := client.New(tsSolo.URL)
	for i, t := range fleet {
		var contended json.RawMessage
		if err := handles[i].Result(ctx, &contended); err != nil {
			return rep, fmt.Errorf("tenant %s result: %w", t.name, err)
		}
		h, err := soloClient.Submit(ctx, "trafficbench_sleep", t.seed, benchSpec{NTasks: t.tasks, DelayNS: delay})
		if err != nil {
			return rep, fmt.Errorf("tenant %s solo rerun: %w", t.name, err)
		}
		if _, err := h.Wait(ctx); err != nil {
			return rep, fmt.Errorf("tenant %s solo wait: %w", t.name, err)
		}
		var alone json.RawMessage
		if err := h.Result(ctx, &alone); err != nil {
			return rep, fmt.Errorf("tenant %s solo result: %w", t.name, err)
		}
		rep.Tenants[i].Identical = string(contended) == string(alone)
	}

	rep.Pass = rep.UnauthStatus == 401 &&
		rep.ProbeThrottled > 0 && rep.ProbeRetryAfterSec > 0 &&
		rep.MaxDeviation <= FairShareTolerance &&
		rep.allIdentical()
	return rep, nil
}

// sampleUntilFirstDone polls every tenant's handle until one reports all
// its tasks complete, and returns that round's per-tenant done counts.
func sampleUntilFirstDone(ctx context.Context, fleet []tenant, handles []*client.Handle) ([]int, error) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		done := make([]int, len(handles))
		finished := false
		for i, h := range handles {
			st, err := h.Status(ctx)
			if err != nil {
				return nil, fmt.Errorf("tenant %s status: %w", fleet[i].name, err)
			}
			done[i] = st.Progress.Done
			if st.Progress.Done >= fleet[i].tasks {
				finished = true
			}
		}
		if finished {
			return done, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}

// submitStatus submits and returns the HTTP status of the failure, or 0 on
// unexpected success / a non-API error.
func submitStatus(ctx context.Context, c *client.Client, spec benchSpec, seed uint64) int {
	_, err := c.Submit(ctx, spec.Kind(), seed, spec)
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode
	}
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
