package trafficbench

import (
	"testing"
)

// TestHarnessSmoke runs the full harness at reduced task durations and
// checks the hard acceptance edges. The fair-share deviation bound itself
// is only asserted loosely here: at test scale the sampling window shrinks
// with the task durations, so the share estimate is noisier than at
// benchmark scale (scripts/bench.sh runs the real thing).
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant load harness is seconds-long")
	}
	rep, err := Run(Options{Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnauthStatus != 401 {
		t.Errorf("unkeyed submission got %d, want 401", rep.UnauthStatus)
	}
	if rep.ProbeThrottled == 0 {
		t.Errorf("burst probe of %d submissions saw no 429s (burst %d)", rep.ProbeSubmitted, rep.Burst)
	}
	if rep.ProbeRetryAfterSec <= 0 {
		t.Errorf("throttled probe carried no Retry-After (%.2fs)", rep.ProbeRetryAfterSec)
	}
	if len(rep.Tenants) != 4 {
		t.Fatalf("report has %d tenants, want 4", len(rep.Tenants))
	}
	for _, tr := range rep.Tenants {
		if tr.DoneAtSnapshot <= 0 {
			t.Errorf("tenant %s (priority %s) completed no tasks by the snapshot — starved", tr.Client, tr.Priority)
		}
		if !tr.Identical {
			t.Errorf("tenant %s result bytes differ from the single-client rerun", tr.Client)
		}
	}
	// Generous at test scale; the committed benchmark holds the real 20%.
	if rep.MaxDeviation > 2*FairShareTolerance {
		t.Errorf("max fair-share deviation %.1f%% even beyond the loose test bound %.0f%%",
			100*rep.MaxDeviation, 200*FairShareTolerance)
	}
	if rep.String() == "" {
		t.Error("empty summary line")
	}
}
