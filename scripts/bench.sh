#!/usr/bin/env bash
# bench.sh — record the engine scheduler's perf trajectory.
#
# Runs the skewed-cost tail-latency benchmark (gocbench -sched, see
# internal/schedbench) and writes BENCH_sched.json at the repo root:
# makespan + p50/p99 task latency for FIFO vs size-aware (LPT) dispatch, the
# FIFO/LPT speedup, and the fair-share phase's steal count. CI runs it
# non-gating so every PR leaves a comparable datapoint.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sched.json}"
go run ./cmd/gocbench -sched "$OUT"
echo "wrote $OUT:"
cat "$OUT"
