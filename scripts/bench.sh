#!/usr/bin/env bash
# bench.sh — record the engine's perf trajectory.
#
# Runs three benchmarks and writes their JSON reports at the repo root:
#
#   BENCH_sched.json — the skewed-cost tail-latency benchmark (gocbench
#     -sched, see internal/schedbench): makespan + p50/p99 task latency for
#     FIFO vs size-aware (LPT) dispatch, the FIFO/LPT speedup, and the
#     fair-share phase's steal count.
#   BENCH_dist.json — the distributed-execution benchmark (gocbench -dist,
#     see internal/distbench): one sweep on a starved local pool vs the same
#     pool plus a remote-worker fleet behind the lease coordinator, both
#     makespans, the speedup, and the byte-identity check.
#   BENCH_traffic.json — the multi-tenant admission-control harness (gocbench
#     -traffic, see internal/trafficbench): four keyed tenants at mixed
#     priorities and sizes on a rate-limited server, each tenant's measured
#     capacity share vs its priority-weighted fair share (20% bound), the
#     401/429 edges with Retry-After, and the per-tenant byte-identity check
#     against single-client reruns.
#
# CI runs it non-gating so every PR leaves comparable datapoints.
set -euo pipefail
cd "$(dirname "$0")/.."

SCHED_OUT="${1:-BENCH_sched.json}"
DIST_OUT="${2:-BENCH_dist.json}"
TRAFFIC_OUT="${3:-BENCH_traffic.json}"
go run ./cmd/gocbench -sched "$SCHED_OUT"
echo "wrote $SCHED_OUT:"
cat "$SCHED_OUT"
go run ./cmd/gocbench -dist "$DIST_OUT"
echo "wrote $DIST_OUT:"
cat "$DIST_OUT"
go run ./cmd/gocbench -traffic "$TRAFFIC_OUT"
echo "wrote $TRAFFIC_OUT:"
cat "$TRAFFIC_OUT"
