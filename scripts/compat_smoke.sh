#!/usr/bin/env bash
# Wire-compat smoke test: build gocserve fresh, start it with persistence,
# and replay the golden corpus of PR 2/3-era envelopes through goccompat —
# old-format (bare-kind) submissions must run, pin @v1 must dedupe onto the
# same jobs with byte-identical result bodies, and batch submission must hit
# the same cache lines. CI runs this alongside restart_smoke.sh; it is also
# handy locally: ./scripts/compat_smoke.sh
set -euo pipefail

addr=127.0.0.1:8374
base="http://$addr"
bindir=$(mktemp -d)
data=$(mktemp -d)
pid=""
cleanup() { [ -n "$pid" ] && kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

go build -o "$bindir/gocserve" ./cmd/gocserve
go build -o "$bindir/goccompat" ./cmd/goccompat

# -version must work offline and report the catalog fingerprint.
"$bindir/gocserve" -version | grep -q "catalog" || {
  echo "gocserve -version did not report the catalog" >&2
  exit 1
}

"$bindir/gocserve" -addr "$addr" -data "$data" &
pid=$!

for _ in $(seq 1 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null || { echo "gocserve never became healthy" >&2; exit 1; }

"$bindir/goccompat" -base "$base" -corpus internal/engine/testdata/wire_corpus.json

echo "compat smoke OK"
