#!/usr/bin/env bash
# Distributed-execution smoke test: a gocserve coordinator with a starved
# local pool, two gocworker processes carrying the sweep over HTTP, one of
# them SIGKILL'd mid-job — and the result must still be byte-identical to a
# plain single-machine run. Exercises the whole lease protocol end to end:
# join (fingerprint), lease, streamed reports, deadline expiry of the killed
# worker's range, and requeue. CI runs this; also handy locally:
# ./scripts/dist_smoke.sh
set -euo pipefail

addr=127.0.0.1:8374
base="http://$addr"
bindir=$(mktemp -d)
out=$(mktemp -d)
pids=()
cleanup() { for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

go build -race -o "$bindir/gocserve" ./cmd/gocserve
go build -race -o "$bindir/gocworker" ./cmd/gocworker

# The binaries are race-instrumented; halt_on_error turns any detected
# race into an immediate crash, so the smoke fails instead of the report
# being lost when the process is killed at the end.
export GORACE="halt_on_error=1"

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "gocserve never became healthy" >&2
  return 1
}

# ~600 tasks x ~13ms: long enough that the workers carry real load and the
# mid-job kill lands while leases are out.
job='{"kind":"equilibrium_sweep","seed":7,"spec":{"gen":{"Miners":11,"Coins":3},"games":600}}'

wait_done() { # $1 = job id
  local state=""
  for _ in $(seq 1 1200); do
    state=$(curl -sf "$base/v1/jobs/$1" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
    [ "$state" = done ] && return 0
    [ "$state" = failed ] && { echo "job failed" >&2; return 1; }
    sleep 0.1
  done
  echo "job never finished (state=$state)" >&2
  return 1
}

# --- Pass 1: single machine, no fleet — the reference bytes. ---
"$bindir/gocserve" -addr "$addr" &
pids+=($!)
wait_healthy
curl -sf -X POST "$base/v2/jobs" -d "$job" >/dev/null
wait_done job-1
curl -sf "$base/v1/jobs/job-1/result" >"$out/reference.json"
kill "${pids[0]}" 2>/dev/null || true
wait "${pids[0]}" 2>/dev/null || true
pids=()

# --- Pass 2: starved coordinator + two remote workers, one killed. ---
"$bindir/gocserve" -addr "$addr" -workers 1 -lease-ttl 2s -lease-tasks 32 &
pids+=($!)
wait_healthy
"$bindir/gocworker" -coordinator "$base" -name victim 2>"$out/victim.log" &
victim=$!
pids+=($victim)
"$bindir/gocworker" -coordinator "$base" -name survivor 2>"$out/survivor.log" &
pids+=($!)

curl -sf -X POST "$base/v2/jobs" -d "$job" >/dev/null

# Wait until the fleet holds leases, then SIGKILL one worker mid-sweep: its
# in-flight range must be requeued after the lease TTL, nothing else lost.
granted=0
for _ in $(seq 1 200); do
  # "leases_granted" appears in both the engine and the dist sections of
  # /healthz; either counts — take the first.
  granted=$(curl -sf "$base/healthz" | sed -n 's/.*"leases_granted": \([0-9]*\).*/\1/p' | head -1)
  [ "${granted:-0}" -ge 2 ] && break
  sleep 0.1
done
[ "${granted:-0}" -ge 1 ] || { echo "fleet never took a lease" >&2; exit 1; }
kill -9 "$victim"
echo "killed worker 'victim' with leases_granted=$granted"

wait_done job-1
curl -sf "$base/v1/jobs/job-1/result" >"$out/distributed.json"

# The acceptance: byte-identical results, single-machine vs distributed
# fleet with a mid-job SIGKILL.
cmp "$out/reference.json" "$out/distributed.json"

# And the fleet must actually have computed part of it.
curl -sf "$base/healthz" >"$out/healthz.json"
remote=$(sed -n 's/.*"remote_completed": \([0-9]*\).*/\1/p' "$out/healthz.json" | head -1)
[ "${remote:-0}" -ge 1 ] || { echo "no remote task completions in $(cat "$out/healthz.json")" >&2; exit 1; }

echo "dist smoke OK: byte-identical result with $remote remote tasks and a SIGKILL'd worker"
