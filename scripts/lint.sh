#!/usr/bin/env bash
# lint.sh — the static gate CI runs before the test step.
#
# Four checks, strictest first:
#
#   gofmt      — every tracked .go file formatted (gofmt -l must be empty).
#   goclint    — the in-tree static suite (cmd/goclint): the determinism
#                rules (nodeterm, maporder, rngfork, errdrop) plus the
#                concurrency-safety rules (lockguard, blockinglock,
#                lockorder, ctxleak) over the whole module. Findings fail
#                the build; suppressions need a //goclint:allow directive
#                with a rationale. Stale directives that no longer suppress
#                anything are reported as warnings (-unused-allows) but do
#                not gate. See DESIGN.md.
#   staticcheck / govulncheck — pinned via `go run tool@version` so nothing
#                is installed into the image. These need module downloads,
#                which offline environments (including the sealed test
#                containers) cannot do: a *download* failure skips the check
#                with a notice, but once the tool runs, its findings gate.
set -uo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="${STATICCHECK_VERSION:-honnef.co/go/tools/cmd/staticcheck@2025.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-golang.org/x/vuln/cmd/govulncheck@v1.1.4}"

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l $(git ls-files '*.go' 2>/dev/null || find . -name '*.go' -not -path './.git/*'))
if [[ -n "$unformatted" ]]; then
    echo "gofmt: files need formatting:"
    echo "$unformatted"
    fail=1
else
    echo "ok"
fi

echo "== goclint (determinism + concurrency suite) =="
if go run ./cmd/goclint -unused-allows ./...; then
    echo "ok"
else
    fail=1
fi

# run_pinned_tool NAME MODULE@VERSION ARGS... — run an external analyzer
# pinned by version. Distinguishes "could not fetch the tool" (skip: offline
# or registry outage, not a code problem) from "the tool ran and found
# something" (gate).
run_pinned_tool() {
    local name="$1" mod="$2"
    shift 2
    echo "== $name ($mod) =="
    local out
    if out=$(go run "$mod" "$@" 2>&1); then
        echo "ok"
        return 0
    fi
    if echo "$out" | grep -qiE 'dial tcp|no such host|connection refused|i/o timeout|unrecognized import path|proxy.*404|cannot find module|missing go.sum entry|tls handshake'; then
        echo "skip: $name unavailable offline (module download failed)"
        return 0
    fi
    echo "$out"
    return 1
}

run_pinned_tool staticcheck "$STATICCHECK_VERSION" ./... || fail=1
run_pinned_tool govulncheck "$GOVULNCHECK_VERSION" ./... || fail=1

if [[ "$fail" -ne 0 ]]; then
    echo "lint: FAIL"
    exit 1
fi
echo "lint: all checks passed"
