#!/usr/bin/env bash
# Restart-recovery smoke test for gocserve persistence: start the server
# with -data, compute a result, kill the process, restart on the same
# directory, and require the pre-restart result to be served byte-identical
# (and the resubmission to be answered from cache). CI runs this; it is also
# handy locally: ./scripts/restart_smoke.sh
set -euo pipefail

addr=127.0.0.1:8373
base="http://$addr"
bin=$(mktemp -d)/gocserve
data=$(mktemp -d)
out=$(mktemp -d)
pid=""
cleanup() { [ -n "$pid" ] && kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

go build -race -o "$bin" ./cmd/gocserve

# The binaries are race-instrumented; halt_on_error turns any detected
# race into an immediate crash, so the smoke fails instead of the report
# being lost when the process is killed at the end.
export GORACE="halt_on_error=1"

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "gocserve never became healthy" >&2
  return 1
}

"$bin" -addr "$addr" -data "$data" &
pid=$!
wait_healthy

job='{"kind":"equilibrium_sweep","seed":7,"spec":{"gen":{"Miners":4,"Coins":2},"games":20}}'
curl -sf -X POST "$base/v2/jobs" -d "$job" >"$out/handle.json"
job_id=$(sed -n 's/.*"id": "\(job-[0-9]*\)".*/\1/p' "$out/handle.json" | head -1)
[ -n "$job_id" ] || { echo "no job id in $(cat "$out/handle.json")" >&2; exit 1; }

state=""
for _ in $(seq 1 200); do
  state=$(curl -sf "$base/v1/jobs/$job_id" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$state" = done ] && break
  sleep 0.1
done
[ "$state" = done ] || { echo "job never finished (state=$state)" >&2; exit 1; }
curl -sf "$base/v1/jobs/$job_id/result" >"$out/before.json"

kill -TERM "$pid"
wait "$pid" || true
pid=""

"$bin" -addr "$addr" -data "$data" &
pid=$!
wait_healthy

# The pre-restart result is served byte-identical after the restart. Poll:
# in the (rare) case the terminal record had not landed before SIGTERM, the
# job is resubmitted and recomputes — determinism makes the bytes identical
# either way, the result is just briefly a 409 while it reruns.
ok=""
for _ in $(seq 1 200); do
  if curl -sf "$base/v1/jobs/$job_id/result" >"$out/after.json"; then
    ok=1
    break
  fi
  sleep 0.1
done
[ -n "$ok" ] || { echo "result never became servable after restart" >&2; exit 1; }
cmp "$out/before.json" "$out/after.json"
# …and an identical resubmission is answered from cache, not recomputed.
curl -sf -X POST "$base/v2/jobs" -d "$job" | grep -q '"cached": true'

echo "restart smoke OK: $job_id survived a restart byte-identically"
