#!/usr/bin/env bash
# Result-data-plane smoke test: a real gocserve process, driven by
# gocstreamcheck through the public SDK — submit an equilibrium sweep, stream
# every per-task document over SSE (schema-validated against the catalog),
# then re-fetch the full span with ?range= and require byte-identical
# documents. CI runs this; also handy locally: ./scripts/stream_smoke.sh
set -euo pipefail

addr=127.0.0.1:8390
base="http://$addr"
bindir=$(mktemp -d)
pids=()
cleanup() { for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

go build -race -o "$bindir/gocserve" ./cmd/gocserve
go build -race -o "$bindir/gocstreamcheck" ./cmd/gocstreamcheck

# The binaries are race-instrumented; halt_on_error turns any detected
# race into an immediate crash, so the smoke fails instead of the report
# being lost when the process is killed at the end.
export GORACE="halt_on_error=1"

"$bindir/gocserve" -addr "$addr" &
pids+=($!)

for _ in $(seq 1 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null || { echo "gocserve never became healthy" >&2; exit 1; }

"$bindir/gocstreamcheck" -server "$base" -games 200

echo "stream smoke OK"
