#!/usr/bin/env bash
# Admission-control smoke test: a real gocserve process with a keyring and a
# tight submission rate limit. Checks the multi-tenant contract end to end:
# an unkeyed submission bounces with 401, two keyed clients submitting the
# same envelope get byte-identical results (deduplicated across tenants), a
# priority-classed envelope is accepted, and a rapid burst past the token
# bucket is answered 429 with a Retry-After header. CI runs this; also handy
# locally: ./scripts/traffic_smoke.sh
set -euo pipefail

addr=127.0.0.1:8391
base="http://$addr"
workdir=$(mktemp -d)
pids=()
cleanup() { for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup EXIT

printf 'alpha:alpha-secret-0001\nbeta:beta-secret-0002\n' > "$workdir/keys.txt"

go build -race -o "$workdir/gocserve" ./cmd/gocserve

# The binaries are race-instrumented; halt_on_error turns any detected
# race into an immediate crash, so the smoke fails instead of the report
# being lost when the process is killed at the end.
export GORACE="halt_on_error=1"
"$workdir/gocserve" -addr "$addr" -keys "$workdir/keys.txt" -rate 3 -burst 3 &
pids+=($!)

for _ in $(seq 1 100); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$base/healthz" >/dev/null || { echo "gocserve never became healthy" >&2; exit 1; }

envelope='{"kind":"equilibrium_sweep","seed":7,"spec":{"gen":{"Miners":5,"Coins":2},"games":50}}'

# 1. The auth gate: no key, no job endpoint. (/healthz above stayed open.)
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v2/jobs" -d "$envelope")
[ "$code" = 401 ] || { echo "unkeyed submission got HTTP $code, want 401" >&2; exit 1; }
echo "unkeyed submission rejected with 401"

# Helper: submit an envelope under a key, wait for the job, fetch its result.
fetch_result() { # key envelope outfile
  local key=$1 env=$2 out=$3 handle state
  curl -sf -X POST "$base/v2/jobs" -H "Authorization: Bearer $key" -d "$env" > "$out.handle"
  handle=$(sed -n 's/.*"handle": *"\(h-[0-9]*\)".*/\1/p' "$out.handle" | head -1)
  [ -n "$handle" ] || { echo "no handle in response:" >&2; cat "$out.handle" >&2; exit 1; }
  for _ in $(seq 1 100); do
    state=$(curl -sf "$base/v2/jobs/$handle" -H "Authorization: Bearer $key" |
      sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [ "$state" = done ] && break
    [ "$state" = failed ] && { echo "job failed" >&2; exit 1; }
    sleep 0.1
  done
  [ "$state" = done ] || { echo "job never finished (state=$state)" >&2; exit 1; }
  curl -sf "$base/v2/jobs/$handle/result" -H "Authorization: Bearer $key" > "$out"
}

# 2. Two keyed tenants, one envelope: results must be byte-identical (the
# deduplicated job is computed once; admission control never touches bytes).
fetch_result alpha-secret-0001 "$envelope" "$workdir/alpha.json"
sleep 0.5 # let a rate token refill before beta's submission
fetch_result beta-secret-0002 "$envelope" "$workdir/beta.json"
cmp "$workdir/alpha.json" "$workdir/beta.json" ||
  { echo "alpha and beta results differ for the same envelope" >&2; exit 1; }
grep -q '"cached": *true' "$workdir/beta.json.handle" ||
  { echo "beta's identical submission was not served from cache" >&2; cat "$workdir/beta.json.handle" >&2; exit 1; }
echo "two keyed clients: byte-identical results, cross-tenant dedup confirmed"

# 3. A priority-classed envelope is schema-accepted end to end.
sleep 0.5
fetch_result alpha-secret-0001 \
  '{"kind":"equilibrium_sweep","seed":8,"priority":"high","spec":{"gen":{"Miners":5,"Coins":2},"games":50}}' \
  "$workdir/high.json"
echo "high-priority envelope accepted and completed"

# 4. Burst past the token bucket: at rate 3/burst 3, ten back-to-back
# submissions must see at least one 429, and the 429 must carry Retry-After.
throttled=0
retry_after=""
for seed in $(seq 100 109); do
  resp=$(curl -s -D "$workdir/hdr" -o /dev/null -w '%{http_code}' \
    -X POST "$base/v2/jobs" -H "Authorization: Bearer alpha-secret-0001" \
    -d '{"kind":"equilibrium_sweep","seed":'"$seed"',"spec":{"gen":{"Miners":4,"Coins":2},"games":10}}')
  if [ "$resp" = 429 ]; then
    throttled=$((throttled + 1))
    retry_after=$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\).*/\1/p' "$workdir/hdr" | head -1)
  fi
done
[ "$throttled" -ge 1 ] || { echo "10-submission burst saw no 429 (rate 3, burst 3)" >&2; exit 1; }
[ -n "$retry_after" ] && [ "$retry_after" -ge 1 ] ||
  { echo "429 carried no usable Retry-After header" >&2; exit 1; }
echo "burst throttled cleanly: $throttled/10 submissions got 429, Retry-After ${retry_after}s"

echo "traffic smoke OK"
